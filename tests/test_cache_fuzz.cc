/**
 * @file
 * Property-based cache fuzzing: under a long random access mix, the
 * cache must preserve the conservation invariants that the DRAM
 * accounting depends on — every dirty sector leaves the chip exactly
 * once, hits never materialize out of thin air, and the MSHR table
 * drains.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "mem/cache.hh"

using namespace shmgpu;
using namespace shmgpu::mem;

namespace
{

struct FuzzConfig
{
    std::uint64_t sizeBytes;
    unsigned assoc;
    bool rmw;
};

} // namespace

class CacheFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned,
                                                 bool, std::uint64_t>>
{
};

TEST_P(CacheFuzz, ConservationInvariants)
{
    auto [size, assoc, rmw, seed] = GetParam();
    CacheParams p;
    p.name = "fuzz";
    p.sizeBytes = size;
    p.assoc = assoc;
    p.mshrs = 16;
    p.fetchOnWriteMiss = rmw;
    SectoredCache cache(p);
    Rng rng(seed);

    constexpr int kBlocks = 256;
    // Ground truth: sectors ever written, per block.
    std::map<Addr, std::uint32_t> written;
    // Dirty sectors that left the cache, per block (must never exceed
    // what was written, and each write-back adds disjoint... sectors
    // may be rewritten after eviction, so we track totals).
    std::map<Addr, std::uint32_t> evicted_dirty;
    std::set<Addr> filled; //!< blocks ever filled or write-validated

    auto on_writeback = [&](const Writeback &wb) {
        if (!wb.valid)
            return;
        // A write-back may only carry sectors that were written.
        EXPECT_EQ(wb.dirtyMask & ~written[wb.blockAddr], 0u)
            << "write-back of never-written sectors";
        evicted_dirty[wb.blockAddr] |= wb.dirtyMask;
    };

    for (int step = 0; step < 20000; ++step) {
        Addr block = rng.below(kBlocks) * 128;
        std::uint32_t sector = static_cast<std::uint32_t>(rng.below(4));
        Addr addr = block + sector * 32;
        bool is_write = rng.chance(0.4);

        auto res = cache.access(addr, 32, is_write);
        switch (res.outcome) {
          case CacheOutcome::Hit:
            EXPECT_TRUE(filled.contains(block))
                << "hit on a block never filled";
            if (is_write)
                written[block] |= (1u << sector);
            break;
          case CacheOutcome::WriteNoFetch:
            written[block] |= (1u << sector);
            filled.insert(block);
            on_writeback(cache.takeInsertWriteback());
            break;
          case CacheOutcome::Miss:
            if (is_write)
                written[block] |= (1u << sector);
            on_writeback(cache.fill(block, res.fetchMask));
            filled.insert(block);
            break;
          case CacheOutcome::MshrMerged:
          case CacheOutcome::NoMshr:
            // Immediate-fill usage never leaves MSHRs pending.
            FAIL() << "unexpected outcome with immediate fills";
        }
        EXPECT_EQ(cache.mshrsInUse(), 0u);
    }

    // Drain: flush everything and check total conservation — every
    // written sector is accounted dirty exactly once at the end
    // (still in cache, or evicted; never duplicated, never lost).
    std::vector<Writeback> wbs;
    cache.flushDirty(wbs);
    std::map<Addr, std::uint32_t> final_dirty = evicted_dirty;
    for (const auto &wb : wbs) {
        EXPECT_EQ(wb.dirtyMask & ~written[wb.blockAddr], 0u);
        final_dirty[wb.blockAddr] |= wb.dirtyMask;
    }
    for (const auto &[block, mask] : written) {
        EXPECT_EQ(final_dirty[block], mask)
            << "written sectors of block " << block
            << " not fully accounted";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, CacheFuzz,
    ::testing::Values(
        std::make_tuple(2048ull, 4u, false, 1ull),
        std::make_tuple(2048ull, 4u, true, 2ull),
        std::make_tuple(4096ull, 2u, false, 3ull),
        std::make_tuple(16384ull, 16u, false, 4ull),
        std::make_tuple(128ull, 1u, false, 5ull)));
