/**
 * @file
 * SweepRunner tests: the determinism guarantee (identical metrics at
 * any job count), exception propagation out of worker threads, and
 * cooperative cancellation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "core/sweep.hh"

using namespace shmgpu;
using namespace shmgpu::core;

namespace
{

gpu::GpuParams
quickParams()
{
    gpu::GpuParams p;
    p.maxCyclesPerKernel = 20000;
    return p;
}

/** A 3-scheme x 3-workload grid over the micro workloads. */
struct Grid
{
    std::vector<schemes::Scheme> designs = {
        schemes::Scheme::Naive, schemes::Scheme::Pssm,
        schemes::Scheme::Shm};
    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    workload::WorkloadSpec mixed = workload::makeMixedMicro();
    std::vector<const workload::WorkloadSpec *> workloads = {
        &stream, &random, &mixed};
};

std::vector<ExperimentResult>
runWithJobs(unsigned jobs)
{
    Grid grid;
    SweepRunner runner(quickParams());
    SweepOptions opts;
    opts.jobs = jobs;
    return runner.run(grid.designs, grid.workloads, opts);
}

void
expectMetricsIdentical(const gpu::RunMetrics &a, const gpu::RunMetrics &b)
{
    // Exact comparisons on purpose: the claim is bit-for-bit
    // determinism, not approximate agreement.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.bytesData, b.bytesData);
    EXPECT_EQ(a.bytesCounter, b.bytesCounter);
    EXPECT_EQ(a.bytesMac, b.bytesMac);
    EXPECT_EQ(a.bytesBmt, b.bytesBmt);
    EXPECT_EQ(a.bytesExtra, b.bytesExtra);
    EXPECT_EQ(a.bandwidthUtilization, b.bandwidthUtilization);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.sharedCtrReads, b.sharedCtrReads);
    EXPECT_EQ(a.commonCtrHits, b.commonCtrHits);
    EXPECT_EQ(a.chunkMacAccesses, b.chunkMacAccesses);
    EXPECT_EQ(a.blockMacAccesses, b.blockMacAccesses);
    EXPECT_EQ(a.energy.dramBytes, b.energy.dramBytes);
    EXPECT_EQ(a.energy.aesBlocks, b.energy.aesBlocks);
    EXPECT_EQ(a.energy.hashes, b.energy.hashes);
}

} // namespace

TEST(SweepRunner, ResultsAreInWorkloadMajorGridOrder)
{
    auto results = runWithJobs(1);
    ASSERT_EQ(results.size(), 9u);
    EXPECT_EQ(results[0].workload, "micro-stream");
    EXPECT_EQ(results[0].scheme, "Naive");
    EXPECT_EQ(results[1].scheme, "PSSM");
    EXPECT_EQ(results[2].scheme, "SHM");
    EXPECT_EQ(results[3].workload, "micro-random");
    EXPECT_EQ(results[8].workload, "micro-mixed");
    EXPECT_EQ(results[8].scheme, "SHM");
}

TEST(SweepRunner, JobCountDoesNotChangeAnyMetric)
{
    auto serial = runWithJobs(1);
    auto parallel = runWithJobs(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].workload + "/" + serial[i].scheme);
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(serial[i].scheme, parallel[i].scheme);
        EXPECT_EQ(serial[i].normalizedIpc, parallel[i].normalizedIpc);
        EXPECT_EQ(serial[i].normalizedEnergyPerInstr,
                  parallel[i].normalizedEnergyPerInstr);
        expectMetricsIdentical(serial[i].metrics, parallel[i].metrics);
        expectMetricsIdentical(serial[i].baseline, parallel[i].baseline);
    }
}

TEST(SweepRunner, JsonSinkIsBitIdenticalAcrossJobCounts)
{
    std::ostringstream serial, parallel;
    writeSweepJson(serial, runWithJobs(1));
    writeSweepJson(parallel, runWithJobs(8));
    EXPECT_EQ(serial.str(), parallel.str());
}

TEST(SweepRunner, SharedBaselineCacheSimulatesEachSpecOnce)
{
    Grid grid;
    SweepRunner runner(quickParams());
    SweepOptions opts;
    opts.jobs = 4;
    runner.run(grid.designs, grid.workloads, opts);
    EXPECT_EQ(runner.baselineCache()->size(), 3u);
}

TEST(SweepRunner, MatchesDirectExperimentRuns)
{
    Grid grid;
    auto results = runWithJobs(8);
    Experiment exp(quickParams());
    auto direct = exp.run(schemes::Scheme::Pssm, grid.random);
    // Cell (micro-random, PSSM) is index 1*3 + 1.
    EXPECT_EQ(results[4].normalizedIpc, direct.normalizedIpc);
    expectMetricsIdentical(results[4].metrics, direct.metrics);
}

namespace
{

/** Runner whose cells throw for one scheme — the exception seam. */
class ThrowingRunner : public SweepRunner
{
  public:
    using SweepRunner::SweepRunner;
    schemes::Scheme poison = schemes::Scheme::Pssm;
    mutable std::atomic<int> cellsRun{0};

  protected:
    ExperimentResult
    runCell(const Experiment &experiment, const SweepCell &cell,
            const RunOptions &options) const override
    {
        ++cellsRun;
        if (cell.scheme == poison)
            throw std::runtime_error("injected cell failure");
        return SweepRunner::runCell(experiment, cell, options);
    }
};

} // namespace

TEST(SweepRunner, PropagatesCellExceptionsFromWorkers)
{
    Grid grid;
    ThrowingRunner runner(quickParams());
    SweepOptions opts;
    opts.jobs = 4;
    EXPECT_THROW(
        {
            try {
                runner.run(grid.designs, grid.workloads, opts);
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "injected cell failure");
                throw;
            }
        },
        std::runtime_error);
}

TEST(SweepRunner, FirstFailureAbandonsUnstartedCells)
{
    Grid grid;
    ThrowingRunner runner(quickParams());
    runner.poison = schemes::Scheme::Naive; // cell 0 fails immediately
    SweepOptions opts;
    opts.jobs = 1; // serial: deterministic count
    EXPECT_THROW(runner.run(grid.designs, grid.workloads, opts),
                 std::runtime_error);
    EXPECT_EQ(runner.cellsRun.load(), 1);
}

TEST(SweepRunner, CancelTokenStopsTheSweep)
{
    Grid grid;
    SweepRunner runner(quickParams());
    SweepOptions opts;
    opts.jobs = 2;
    opts.cancel = std::make_shared<std::atomic<bool>>(true);
    EXPECT_THROW(runner.run(grid.designs, grid.workloads, opts),
                 SweepCancelled);
}

namespace
{

/** Runner that flips the cancel token after the first cell. */
class SelfCancellingRunner : public SweepRunner
{
  public:
    using SweepRunner::SweepRunner;
    std::shared_ptr<std::atomic<bool>> token =
        std::make_shared<std::atomic<bool>>(false);
    mutable std::atomic<int> cellsRun{0};

  protected:
    ExperimentResult
    runCell(const Experiment &experiment, const SweepCell &cell,
            const RunOptions &options) const override
    {
        ++cellsRun;
        auto r = SweepRunner::runCell(experiment, cell, options);
        token->store(true);
        return r;
    }
};

} // namespace

TEST(SweepRunner, MidSweepCancellationAbandonsRemainingCells)
{
    Grid grid;
    SelfCancellingRunner runner(quickParams());
    SweepOptions opts;
    opts.jobs = 1;
    opts.cancel = runner.token;
    EXPECT_THROW(runner.run(grid.designs, grid.workloads, opts),
                 SweepCancelled);
    EXPECT_EQ(runner.cellsRun.load(), 1);
}

TEST(SweepRunner, EmptyGridReturnsNoResults)
{
    SweepRunner runner(quickParams());
    EXPECT_TRUE(runner.run({}, {}, {}).empty());
    EXPECT_TRUE(runner.runCells({}, {}).empty());
}

TEST(SweepRunner, RunCellsSupportsRaggedGrids)
{
    Grid grid;
    SweepRunner runner(quickParams());
    std::vector<SweepCell> cells = {
        {schemes::Scheme::Shm, &grid.stream},
        {schemes::Scheme::Naive, &grid.mixed},
    };
    auto results = runner.runCells(cells, {});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].workload, "micro-stream");
    EXPECT_EQ(results[0].scheme, "SHM");
    EXPECT_EQ(results[1].workload, "micro-mixed");
    EXPECT_EQ(results[1].scheme, "Naive");
}
