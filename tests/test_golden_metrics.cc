/**
 * @file
 * Golden-metrics regression tier: the seed-state normalizedIpc /
 * overhead / metadata-overhead numbers for a small scheme x workload
 * grid are pinned in tests/golden/golden_metrics.json. Any simulator
 * change that moves a metric by more than 1e-9 fails here, so paper
 * numbers cannot drift silently through refactors.
 *
 * Regenerate after an *intentional* behaviour change with:
 *
 *   SHMGPU_UPDATE_GOLDEN=1 ./build/tests/test_golden_metrics
 *
 * then review the JSON diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>

#include "core/sweep.hh"
#include "mem/replacement.hh"

using namespace shmgpu;
using namespace shmgpu::core;

#ifndef SHMGPU_GOLDEN_DIR
#error "build must define SHMGPU_GOLDEN_DIR"
#endif

namespace
{

constexpr double kTolerance = 1e-9;

std::string
goldenPath()
{
    return std::string(SHMGPU_GOLDEN_DIR) + "/golden_metrics.json";
}

std::string
goldenPoliciesPath()
{
    return std::string(SHMGPU_GOLDEN_DIR) + "/golden_policies.json";
}

/**
 * The pinned grid. Changing it invalidates the golden file.
 * @p mutate adjusts *engine* knobs (shard count, kernel loop) that by
 * contract cannot move any metric — those variants are checked against
 * the very same golden numbers.
 */
std::vector<ExperimentResult>
runPinnedGrid(const std::function<void(gpu::GpuParams &)> &mutate = {})
{
    gpu::GpuParams params;
    params.maxCyclesPerKernel = 20000;
    if (mutate)
        mutate(params);

    const std::vector<schemes::Scheme> designs = {
        schemes::Scheme::Naive, schemes::Scheme::Pssm,
        schemes::Scheme::Shm};
    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    workload::WorkloadSpec mixed = workload::makeMixedMicro();

    SweepRunner runner(params);
    return runner.run(designs, {&stream, &random, &mixed}, {});
}

json::Value
goldenFromResults(const std::vector<ExperimentResult> &results,
                  bool with_policy = false)
{
    json::Value doc = json::Value::object();
    doc["comment"] = json::Value(
        "Pinned seed-state metrics; regenerate with "
        "SHMGPU_UPDATE_GOLDEN=1 ./build/tests/test_golden_metrics");
    doc["maxCyclesPerKernel"] = json::Value(20000);
    json::Value arr = json::Value::array();
    for (const auto &r : results) {
        json::Value cell = json::Value::object();
        cell["workload"] = json::Value(r.workload);
        cell["scheme"] = json::Value(r.scheme);
        if (with_policy)
            cell["policy"] = json::Value(r.l2Policy);
        cell["normalizedIpc"] = json::Value(r.normalizedIpc);
        cell["overhead"] = json::Value(r.overhead());
        cell["normalizedEnergyPerInstr"] =
            json::Value(r.normalizedEnergyPerInstr);
        cell["metadataOverhead"] =
            json::Value(r.metrics.metadataOverhead());
        cell["baselineIpc"] = json::Value(r.baseline.ipc);
        arr.append(std::move(cell));
    }
    doc["cells"] = std::move(arr);
    return doc;
}

bool
updateRequested()
{
    const char *env = std::getenv("SHMGPU_UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' &&
           std::string(env) != "0";
}

/** Compare a grid's metrics against a committed golden file. */
void
expectMatchesGoldenFile(const std::vector<ExperimentResult> &results,
                        const std::string &path,
                        bool with_policy = false)
{
    json::Value current = goldenFromResults(results, with_policy);
    json::Value golden = json::Value::parseFile(path);
    const auto &want = golden.at("cells");
    const auto &got = current.at("cells");
    ASSERT_EQ(got.size(), want.size())
        << "grid shape changed; regenerate the golden file";

    for (std::size_t i = 0; i < want.size(); ++i) {
        const auto &w = want.at(i);
        const auto &g = got.at(i);
        SCOPED_TRACE(w.at("workload").asString() + "/" +
                     w.at("scheme").asString() +
                     (with_policy ? "/" + w.at("policy").asString()
                                  : std::string()));
        ASSERT_EQ(g.at("workload").asString(),
                  w.at("workload").asString());
        ASSERT_EQ(g.at("scheme").asString(), w.at("scheme").asString());
        if (with_policy)
            ASSERT_EQ(g.at("policy").asString(),
                      w.at("policy").asString());
        for (const char *metric :
             {"normalizedIpc", "overhead", "normalizedEnergyPerInstr",
              "metadataOverhead", "baselineIpc"}) {
            EXPECT_NEAR(g.at(metric).asNumber(),
                        w.at(metric).asNumber(), kTolerance)
                << metric << " drifted beyond 1e-9 — if intentional, "
                << "regenerate with SHMGPU_UPDATE_GOLDEN=1";
        }
    }
}

void
expectMatchesGolden(const std::vector<ExperimentResult> &results)
{
    expectMatchesGoldenFile(results, goldenPath());
}

/**
 * The pinned policy grid: the scan-resistant policies (SIEVE and
 * S3FIFO on both the L2 banks and the MDCs) over a 2x2 scheme x
 * workload corner. Pinning these keeps the *non-default* policies
 * from drifting silently — golden_metrics.json only guards LRU.
 */
std::vector<ExperimentResult>
runPolicyPinnedGrid(const std::function<void(gpu::GpuParams &)>
                        &mutate = {})
{
    gpu::GpuParams params;
    params.maxCyclesPerKernel = 20000;
    if (mutate)
        mutate(params);

    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec mixed = workload::makeMixedMicro();
    return runPolicyGrid(
        params, {mem::PolicyKind::Sieve, mem::PolicyKind::S3Fifo},
        {schemes::Scheme::Naive, schemes::Scheme::Shm},
        {&stream, &mixed}, {});
}

} // namespace

TEST(GoldenMetrics, SeedGridMatchesGoldenFile)
{
    auto results = runPinnedGrid();

    if (updateRequested()) {
        json::Value current = goldenFromResults(results);
        std::ofstream os(goldenPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        current.write(os, 2);
        os << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    expectMatchesGolden(results);
}

TEST(GoldenMetrics, ShardedGridMatchesGoldenFile)
{
    // The sharded engine is a pure parallelization: --shards 4 must
    // reproduce the committed numbers bit for bit. This tier never
    // regenerates — the serial test owns the file.
    expectMatchesGolden(
        runPinnedGrid([](gpu::GpuParams &p) { p.shards = 4; }));
}

TEST(GoldenMetrics, ReferenceLoopGridMatchesGoldenFile)
{
    // Same contract for the per-cycle reference engine: both kernel
    // loops simulate the same machine.
    expectMatchesGolden(runPinnedGrid(
        [](gpu::GpuParams &p) { p.referenceKernelLoop = true; }));
}

TEST(GoldenMetrics, PolicyGridMatchesGoldenFile)
{
    auto results = runPolicyPinnedGrid();

    if (updateRequested()) {
        json::Value current = goldenFromResults(results, true);
        std::ofstream os(goldenPoliciesPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << goldenPoliciesPath();
        current.write(os, 2);
        os << "\n";
        GTEST_SKIP() << "golden file regenerated at "
                     << goldenPoliciesPath();
    }

    expectMatchesGoldenFile(results, goldenPoliciesPath(), true);
}

TEST(GoldenMetrics, PolicyGridShardedMatchesGoldenFile)
{
    // Replacement decisions are position-seeded, never thread-seeded,
    // so the sharded engine must reproduce the pinned SIEVE/S3FIFO
    // numbers bit for bit too.
    expectMatchesGoldenFile(
        runPolicyPinnedGrid([](gpu::GpuParams &p) { p.shards = 4; }),
        goldenPoliciesPath(), true);
}

TEST(GoldenMetrics, GoldenFileIsSelfConsistent)
{
    // Guard the golden file itself: parseable, right shape, sane
    // ranges — catches hand-edits that would silently weaken the tier.
    json::Value golden = json::Value::parseFile(goldenPath());
    const auto &cells = golden.at("cells");
    ASSERT_EQ(cells.size(), 9u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells.at(i);
        double n = c.at("normalizedIpc").asNumber();
        EXPECT_GT(n, 0.0);
        EXPECT_LE(n, 1.001);
        EXPECT_NEAR(c.at("overhead").asNumber(), 1.0 - n, 1e-12);
    }
}
