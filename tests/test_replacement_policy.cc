/**
 * @file
 * Model-differential fuzz for mem::ReplacementPolicy.
 *
 * Each policy object is driven directly (no SectoredCache in the
 * loop) against an independent naive reference model keyed by block
 * address instead of way index. The driver generates randomized
 * access strings honoring the cache<->policy contract — installs into
 * the first invalid way, victim() only with every way valid, onEvict
 * tombstones followed by reuse of the freed way — and checks that the
 * policy and the model evict the same block at every decision point.
 *
 * The reference models are deliberately naive (std::map state, linear
 * scans, queues of block addresses) so a bookkeeping bug in the real
 * way-indexed structures (S3FIFO's queue threading, SIEVE's hand
 * repair on external invalidation) cannot be mirrored by construction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "mem/replacement.hh"

using namespace shmgpu;
using mem::PolicyKind;
using mem::ReplacementPolicy;

namespace
{

constexpr std::uint64_t testSeed = 0xA5A5F00Dull;

/** Stamp-order reference shared by LRU and FIFO: a block list in
 *  stamp order (front = oldest). onInsert always refreshes (matching
 *  StampPolicy), onHit refreshes only under LRU. */
class RefStamp
{
  public:
    RefStamp(bool refresh_on_hit) : refreshOnHit(refresh_on_hit) {}

    void
    onHit(Addr block)
    {
        if (refreshOnHit)
            touch(block);
    }

    void onInsert(Addr block) { touch(block); }

    Addr
    victim(const std::vector<Addr> &pending_blocks)
    {
        for (Addr block : order) {
            if (std::find(pending_blocks.begin(), pending_blocks.end(),
                          block) == pending_blocks.end()) {
                drop(block);
                return block;
            }
        }
        Addr block = order.front();
        drop(block);
        return block;
    }

    void onEvict(Addr block) { drop(block); }

  private:
    void
    touch(Addr block)
    {
        drop(block);
        order.push_back(block);
    }

    void
    drop(Addr block)
    {
        auto it = std::find(order.begin(), order.end(), block);
        if (it != order.end())
            order.erase(it);
    }

    std::vector<Addr> order; //!< front = oldest stamp
    bool refreshOnHit;
};

/** S3FIFO reference keyed by block address. */
class RefS3Fifo
{
  public:
    explicit RefS3Fifo(std::uint32_t assoc)
        : smallTarget(std::max(1u, assoc / 8)), ghostCap(assoc)
    {
    }

    void
    onHit(Addr block)
    {
        freq[block] = std::min(freq[block] + 1, 3);
    }

    void
    onInsert(Addr block, bool tracked)
    {
        if (tracked) {
            freq[block] = std::min(freq[block] + 1, 3);
            return;
        }
        freq[block] = 0;
        if (inGhost(block)) {
            ghost.erase(std::find(ghost.begin(), ghost.end(), block));
            mainQ.push_back(block);
        } else {
            smallQ.push_back(block);
        }
    }

    Addr
    victim()
    {
        while (true) {
            if (!smallQ.empty() &&
                (smallQ.size() >= smallTarget || mainQ.empty())) {
                Addr block = smallQ.front();
                smallQ.erase(smallQ.begin());
                if (freq[block] > 0) {
                    freq[block] = 0;
                    mainQ.push_back(block);
                    continue;
                }
                remember(block);
                freq.erase(block);
                return block;
            }
            Addr block = mainQ.front();
            mainQ.erase(mainQ.begin());
            if (freq[block] > 0) {
                --freq[block];
                mainQ.push_back(block);
                continue;
            }
            freq.erase(block);
            return block;
        }
    }

    void
    onEvict(Addr block)
    {
        auto drop = [block](std::vector<Addr> &q) {
            auto it = std::find(q.begin(), q.end(), block);
            if (it != q.end())
                q.erase(it);
        };
        drop(smallQ);
        drop(mainQ);
        freq.erase(block);
    }

  private:
    bool
    inGhost(Addr block) const
    {
        return std::find(ghost.begin(), ghost.end(), block) !=
               ghost.end();
    }

    void
    remember(Addr block)
    {
        auto it = std::find(ghost.begin(), ghost.end(), block);
        if (it != ghost.end())
            ghost.erase(it);
        else if (ghost.size() >= ghostCap)
            ghost.erase(ghost.begin());
        ghost.push_back(block);
    }

    std::vector<Addr> smallQ; //!< front = oldest
    std::vector<Addr> mainQ;  //!< front = oldest
    std::vector<Addr> ghost;  //!< front = oldest remembered eviction
    std::map<Addr, int> freq;
    std::size_t smallTarget;
    std::size_t ghostCap;
};

/** SIEVE reference: one block list oldest-first, a visited flag per
 *  block, and the hand stored as a block address. */
class RefSieve
{
  public:
    void
    onHit(Addr block)
    {
        visited[block] = true;
    }

    void
    onInsert(Addr block, bool tracked)
    {
        if (tracked) {
            visited[block] = true;
            return;
        }
        order.push_back(block);
        visited[block] = false;
    }

    Addr
    victim()
    {
        std::size_t i = handValid ? indexOf(hand) : 0;
        while (visited[order[i]]) {
            visited[order[i]] = false;
            i = i + 1 < order.size() ? i + 1 : 0;
        }
        Addr block = order[i];
        // The hand rests on the next-newer survivor; past the head it
        // restarts at the tail (oldest).
        if (i + 1 < order.size()) {
            hand = order[i + 1];
            handValid = true;
        } else {
            handValid = false;
        }
        drop(block);
        return block;
    }

    void
    onEvict(Addr block)
    {
        if (handValid && hand == block) {
            std::size_t i = indexOf(block);
            if (i + 1 < order.size())
                hand = order[i + 1];
            else
                handValid = false;
        }
        drop(block);
    }

  private:
    std::size_t
    indexOf(Addr block) const
    {
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (order[i] == block)
                return i;
        }
        ADD_FAILURE() << "sieve reference lost block " << block;
        return 0;
    }

    void
    drop(Addr block)
    {
        auto it = std::find(order.begin(), order.end(), block);
        if (it != order.end())
            order.erase(it);
        visited.erase(block);
    }

    std::vector<Addr> order; //!< front = oldest (the tail)
    std::map<Addr, bool> visited;
    Addr hand = 0;
    bool handValid = false;
};

/**
 * Drives one policy instance and its reference model through a
 * randomized access string, checking every victim() decision. Returns
 * the decision log (victim way per eviction) so callers can compare
 * reruns for determinism.
 */
std::vector<std::uint32_t>
fuzzPolicy(PolicyKind kind, std::uint32_t assoc, std::uint32_t seed,
           std::size_t steps)
{
    Rng policy_rng(testSeed);
    Rng reference_rng(testSeed);
    auto policy = mem::makeReplacementPolicy(kind, assoc, &policy_rng);

    RefStamp ref_stamp(kind == PolicyKind::Lru);
    RefS3Fifo ref_s3(assoc);
    RefSieve ref_sieve;

    std::vector<Addr> way_block(assoc, 0);
    std::vector<bool> way_valid(assoc, false);
    std::vector<std::uint32_t> decisions;

    std::mt19937 urbg(seed);
    auto rand_below = [&urbg](std::uint32_t bound) {
        return static_cast<std::uint32_t>(urbg() % bound);
    };

    // Small block pool so reuse (including reuse after a tombstone)
    // is common; blocks are nonzero so Addr 0 never collides with an
    // empty slot.
    const std::uint32_t pool = 3 * assoc + 2;

    auto ref_insert = [&](Addr block, bool tracked) {
        switch (kind) {
          case PolicyKind::Lru:
          case PolicyKind::Fifo: ref_stamp.onInsert(block); break;
          case PolicyKind::Random: break;
          case PolicyKind::S3Fifo: ref_s3.onInsert(block, tracked); break;
          case PolicyKind::Sieve: ref_sieve.onInsert(block, tracked); break;
        }
    };

    for (std::size_t step = 0; step < steps; ++step) {
        // Tombstone: external invalidation of a random valid way,
        // whose slot a later install must be able to reuse.
        if (rand_below(10) == 0) {
            std::vector<std::uint32_t> valid_ways;
            for (std::uint32_t w = 0; w < assoc; ++w) {
                if (way_valid[w])
                    valid_ways.push_back(w);
            }
            if (!valid_ways.empty()) {
                std::uint32_t w =
                    valid_ways[rand_below(static_cast<std::uint32_t>(
                        valid_ways.size()))];
                policy->onEvict(w);
                switch (kind) {
                  case PolicyKind::Lru:
                  case PolicyKind::Fifo:
                    ref_stamp.onEvict(way_block[w]);
                    break;
                  case PolicyKind::Random: break;
                  case PolicyKind::S3Fifo:
                    ref_s3.onEvict(way_block[w]);
                    break;
                  case PolicyKind::Sieve:
                    ref_sieve.onEvict(way_block[w]);
                    break;
                }
                way_valid[w] = false;
                continue;
            }
        }

        Addr block = 1 + rand_below(pool);

        // Hit or refresh of a resident block.
        std::uint32_t hit_way = ReplacementPolicy::noWay;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (way_valid[w] && way_block[w] == block) {
                hit_way = w;
                break;
            }
        }
        if (hit_way != ReplacementPolicy::noWay) {
            if (rand_below(5) == 0) {
                // Refresh (re-fill / write-validate of a tracked way).
                policy->onInsert(hit_way, block);
                ref_insert(block, true);
            } else {
                policy->onHit(hit_way);
                switch (kind) {
                  case PolicyKind::Lru:
                  case PolicyKind::Fifo: ref_stamp.onHit(block); break;
                  case PolicyKind::Random: break;
                  case PolicyKind::S3Fifo: ref_s3.onHit(block); break;
                  case PolicyKind::Sieve: ref_sieve.onHit(block); break;
                }
            }
            continue;
        }

        // Miss: first invalid way in way order, like the cache scan.
        std::uint32_t target = ReplacementPolicy::noWay;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (!way_valid[w]) {
                target = w;
                break;
            }
        }

        if (target == ReplacementPolicy::noWay) {
            // All ways valid: consult the policy. LRU/FIFO get a
            // random pending-fill mask to exercise the tie-break; the
            // scan-resistant policies must ignore it.
            std::uint64_t pending = 0;
            if (assoc > 1 && rand_below(3) == 0)
                pending = urbg() & ((1ull << assoc) - 1);
            std::vector<Addr> pending_blocks;
            for (std::uint32_t w = 0; w < assoc; ++w) {
                if ((pending >> w) & 1)
                    pending_blocks.push_back(way_block[w]);
            }

            std::uint32_t way = policy->victim(pending);
            EXPECT_LT(way, assoc);
            EXPECT_TRUE(way < assoc && way_valid[way]);
            if (way >= assoc || !way_valid[way])
                return decisions; // state diverged; stop this string
            decisions.push_back(way);

            switch (kind) {
              case PolicyKind::Lru:
              case PolicyKind::Fifo:
                EXPECT_EQ(way_block[way],
                          ref_stamp.victim(pending_blocks))
                    << "policy=" << mem::policyName(kind)
                    << " assoc=" << assoc << " step=" << step;
                break;
              case PolicyKind::Random:
                EXPECT_EQ(way, static_cast<std::uint32_t>(
                                   reference_rng.below(assoc)))
                    << "assoc=" << assoc << " step=" << step;
                break;
              case PolicyKind::S3Fifo:
                EXPECT_EQ(way_block[way], ref_s3.victim())
                    << "assoc=" << assoc << " step=" << step;
                break;
              case PolicyKind::Sieve:
                EXPECT_EQ(way_block[way], ref_sieve.victim())
                    << "assoc=" << assoc << " step=" << step;
                break;
            }
            target = way;
            way_valid[target] = false;
        }

        policy->onInsert(target, block);
        ref_insert(block, false);
        way_valid[target] = true;
        way_block[target] = block;
    }
    return decisions;
}

class PolicyFuzz
    : public testing::TestWithParam<
          std::tuple<PolicyKind, std::uint32_t, std::uint32_t>>
{
};

TEST_P(PolicyFuzz, MatchesNaiveModel)
{
    auto [kind, assoc, seed] = GetParam();
    fuzzPolicy(kind, assoc, seed, 4000);
}

TEST_P(PolicyFuzz, DeterministicAcrossReruns)
{
    auto [kind, assoc, seed] = GetParam();
    auto first = fuzzPolicy(kind, assoc, seed, 1500);
    auto second = fuzzPolicy(kind, assoc, seed, 1500);
    EXPECT_EQ(first, second);
}

std::string
policyFuzzName(const testing::TestParamInfo<PolicyFuzz::ParamType> &info)
{
    return std::string(mem::policyName(std::get<0>(info.param))) +
           "_a" + std::to_string(std::get<1>(info.param)) + "_s" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyFuzz,
    testing::Combine(testing::Values(PolicyKind::Lru, PolicyKind::Fifo,
                                     PolicyKind::Random,
                                     PolicyKind::S3Fifo,
                                     PolicyKind::Sieve),
                     // Single-way sets are a degenerate corner every
                     // policy must survive (victim() == way 0 always);
                     // 4 matches the MDCs, 16 the L2 banks.
                     testing::Values(1u, 4u, 16u),
                     testing::Values(1u, 2u, 3u)),
    policyFuzzName);

TEST(ReplacementPolicy, SingleWayVictimIsAlwaysWayZero)
{
    for (PolicyKind kind : mem::allPolicies()) {
        Rng rng(testSeed);
        auto policy = mem::makeReplacementPolicy(kind, 1, &rng);
        policy->onInsert(0, 0x40);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(policy->victim(0), 0u) << mem::policyName(kind);
            policy->onInsert(0, 0x80 + static_cast<Addr>(i));
        }
    }
}

TEST(ReplacementPolicy, NamesRoundTrip)
{
    for (PolicyKind kind : mem::allPolicies()) {
        PolicyKind parsed;
        ASSERT_TRUE(mem::tryPolicyFromName(mem::policyName(kind),
                                           &parsed));
        EXPECT_EQ(parsed, kind);
    }
    PolicyKind parsed;
    EXPECT_FALSE(mem::tryPolicyFromName("clock", &parsed));
    EXPECT_FALSE(mem::tryPolicyFromName("LRU", &parsed));
    EXPECT_FALSE(mem::tryPolicyFromName("", &parsed));
}

} // namespace
