/**
 * @file
 * CalendarQueue unit tests: the (cycle, id) pop-order contract, the
 * 64-slot wheel/overflow boundary, rebasing via clear(), and a
 * randomized comparison against a sorted-multiset reference model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/calendar_queue.hh"
#include "common/rng.hh"

using namespace shmgpu;

using Event = std::pair<Cycle, std::uint32_t>;

TEST(CalendarQueue, PopsInCycleOrder)
{
    CalendarQueue q(8);
    q.clear(0);
    q.push(5, 0);
    q.push(2, 1);
    q.push(9, 2);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.popMin(), Event(2, 1));
    EXPECT_EQ(q.popMin(), Event(5, 0));
    EXPECT_EQ(q.popMin(), Event(9, 2));
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, SameCycleTiesBreakByAscendingId)
{
    // Same-cycle pops must come out in ascending id — the SM issue
    // order the event-driven kernel loop relies on for bit-identity
    // with the per-cycle reference loop.
    CalendarQueue q(64);
    q.clear(100);
    for (std::uint32_t id : {37u, 3u, 50u, 0u, 12u})
        q.push(100, id);
    for (std::uint32_t want : {0u, 3u, 12u, 37u, 50u})
        EXPECT_EQ(q.popMin(), Event(100, want));
}

TEST(CalendarQueue, InterleavesPushesWithPops)
{
    CalendarQueue q(4);
    q.clear(0);
    q.push(0, 2);
    q.push(0, 1);
    EXPECT_EQ(q.popMin(), Event(0, 1));
    q.push(1, 1); // re-schedule after pop, like back-to-back issue
    EXPECT_EQ(q.popMin(), Event(0, 2));
    q.push(3, 2);
    EXPECT_EQ(q.popMin(), Event(1, 1));
    EXPECT_EQ(q.popMin(), Event(3, 2));
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarEventsCrossTheWheelBoundary)
{
    // Events >= 64 cycles ahead park in the overflow heap and must
    // migrate into the wheel as the clock reaches them, including
    // exactly-at-the-boundary and far-jump cases.
    CalendarQueue q(8);
    q.clear(0);
    q.push(63, 0);   // last wheel slot
    q.push(64, 1);   // first overflow cycle
    q.push(64, 0);   // same cycle, lower id, also overflow
    q.push(5000, 2); // deep overflow
    EXPECT_EQ(q.popMin(), Event(63, 0));
    EXPECT_EQ(q.popMin(), Event(64, 0));
    EXPECT_EQ(q.popMin(), Event(64, 1));
    EXPECT_EQ(q.popMin(), Event(5000, 2));
}

TEST(CalendarQueue, JumpAcrossEmptyWheelThenNearPushes)
{
    CalendarQueue q(8);
    q.clear(0);
    q.push(1000, 3);
    EXPECT_EQ(q.popMin(), Event(1000, 3));
    // After the jump the wheel is rebased at 1000: near pushes land in
    // the ring again.
    q.push(1001, 4);
    q.push(1000, 5); // same cycle as the last pop is still legal
    EXPECT_EQ(q.popMin(), Event(1000, 5));
    EXPECT_EQ(q.popMin(), Event(1001, 4));
}

TEST(CalendarQueue, ClearRebasesTheClock)
{
    CalendarQueue q(8);
    q.clear(0);
    q.push(10, 1);
    q.push(200, 2);
    ASSERT_EQ(q.size(), 2u);
    q.clear(5'000'000);
    EXPECT_TRUE(q.empty());
    q.push(5'000'000, 0); // at the new base
    q.push(5'000'070, 1); // overflow relative to the new base
    EXPECT_EQ(q.popMin(), Event(5'000'000, 0));
    EXPECT_EQ(q.popMin(), Event(5'000'070, 1));
}

TEST(CalendarQueue, ManyIdsUseMultipleMaskWords)
{
    // > 64 ids exercises the multi-word slot bitmasks.
    CalendarQueue q(200);
    q.clear(0);
    for (std::uint32_t id = 0; id < 200; ++id)
        q.push(7, 199 - id);
    for (std::uint32_t id = 0; id < 200; ++id)
        EXPECT_EQ(q.popMin(), Event(7, id));
}

TEST(CalendarQueue, MatchesReferenceModelOnRandomTraffic)
{
    // Drive the queue with the kernel engine's traffic shape (mostly
    // +1/+N near pushes, occasional DRAM-latency far pushes) and
    // compare every pop against a sorted-set reference model.
    Rng rng(0xCA1E4Da5u);
    CalendarQueue q(30);
    std::set<Event> model;
    std::vector<std::uint32_t> idle; // ids with no pending event
    q.clear(0);
    Cycle clock = 0;

    for (std::uint32_t id = 0; id < 30; ++id) {
        q.push(0, id);
        model.emplace(0, id);
    }

    static constexpr Cycle deltas[] = {0, 1, 2, 5, 17, 63, 64, 400};
    for (int step = 0; step < 20000; ++step) {
        ASSERT_EQ(q.size(), model.size());
        if (model.empty() || (!idle.empty() && rng.below(3) == 0)) {
            // Re-schedule an idle id at a random distance; at most one
            // pending event per id, like the kernel engine's SMs.
            std::size_t pick = rng.below(idle.size());
            std::uint32_t id = idle[pick];
            idle[pick] = idle.back();
            idle.pop_back();
            Cycle at = clock + deltas[rng.below(8)];
            q.push(at, id);
            model.emplace(at, id);
        } else {
            Event got = q.popMin();
            Event want = *model.begin();
            model.erase(model.begin());
            ASSERT_EQ(got, want) << "step " << step;
            clock = got.first;
            idle.push_back(got.second);
        }
    }
}
