/**
 * @file
 * SpscRing tests: the single-thread FIFO/capacity contract, a
 * randomized model comparison against std::deque, and a two-thread
 * producer/consumer stress run that transfers a checksummed sequence —
 * the test ThreadSanitizer exercises for the release/acquire
 * publication protocol.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/spsc_ring.hh"

using namespace shmgpu;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
    EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrder)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsPush)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.size(), 4u);

    int v = -1;
    EXPECT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ring.tryPush(99)); // slot freed
    for (int want : {1, 2, 3, 99}) {
        EXPECT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, want);
    }
}

TEST(SpscRing, IndicesWrapAroundManyTimes)
{
    SpscRing<std::uint64_t> ring(4);
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        ASSERT_TRUE(ring.tryPop(v));
        ASSERT_EQ(v, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MatchesDequeModelOnRandomTraffic)
{
    Rng rng(0x59C0FFu);
    SpscRing<std::uint32_t> ring(16);
    std::deque<std::uint32_t> model;

    for (unsigned step = 0; step < 200000; ++step) {
        if (rng.below(2) == 0) {
            auto val = static_cast<std::uint32_t>(rng.next());
            bool pushed = ring.tryPush(val);
            ASSERT_EQ(pushed, model.size() < ring.capacity());
            if (pushed)
                model.push_back(val);
        } else {
            std::uint32_t got = 0;
            bool popped = ring.tryPop(got);
            ASSERT_EQ(popped, !model.empty());
            if (popped) {
                ASSERT_EQ(got, model.front());
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
        ASSERT_EQ(ring.empty(), model.empty());
    }
}

TEST(SpscRing, TwoThreadTransferPreservesSequence)
{
    // One producer thread, one consumer thread (this one), a ring much
    // smaller than the transfer: every element must arrive exactly
    // once, in order, through many full/empty transitions.
    constexpr std::uint64_t count = 200000;
    SpscRing<std::uint64_t> ring(8);

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < count; ++i)
            while (!ring.tryPush(i))
                std::this_thread::yield();
    });

    std::uint64_t expect = 0;
    while (expect < count) {
        std::uint64_t v = 0;
        if (ring.tryPop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            // Yield on empty: on a single-core machine a spinning
            // consumer starves the producer for whole timeslices.
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BulkPushIsFifoAndAllOrNothing)
{
    SpscRing<int> ring(8); // capacity 8
    int batch[5] = {1, 2, 3, 4, 5};
    EXPECT_TRUE(ring.tryPushBulk(batch, 5));
    EXPECT_EQ(ring.size(), 5u);

    // Only 3 slots free: a 4-element batch must be rejected whole.
    int more[4] = {6, 7, 8, 9};
    EXPECT_FALSE(ring.tryPushBulk(more, 4));
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_TRUE(ring.tryPushBulk(more, 3));
    EXPECT_EQ(ring.size(), 8u);

    // Zero-element pushes succeed even on a full ring.
    EXPECT_TRUE(ring.tryPushBulk(nullptr, 0));
    EXPECT_FALSE(ring.tryPush(99));

    for (int expect = 1; expect <= 8; ++expect) {
        int v = 0;
        ASSERT_TRUE(ring.tryPop(v));
        ASSERT_EQ(v, expect);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BulkPushMatchesDequeModelOnRandomTraffic)
{
    Rng rng(0xb01c);
    SpscRing<std::uint32_t> ring(16);
    std::deque<std::uint32_t> model;
    std::uint32_t seq = 0;
    for (int step = 0; step < 20000; ++step) {
        if (rng.chance(0.5)) {
            std::uint32_t batch[7];
            std::size_t n = static_cast<std::size_t>(rng.below(8));
            for (std::size_t i = 0; i < n; ++i)
                batch[i] = seq + static_cast<std::uint32_t>(i);
            bool fits = model.size() + n <= ring.capacity();
            ASSERT_EQ(ring.tryPushBulk(batch, n), fits);
            if (fits) {
                seq += static_cast<std::uint32_t>(n);
                for (std::size_t i = 0; i < n; ++i)
                    model.push_back(batch[i]);
            }
        } else {
            std::uint32_t v = 0;
            bool popped = ring.tryPop(v);
            ASSERT_EQ(popped, !model.empty());
            if (popped) {
                ASSERT_EQ(v, model.front());
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
    }
}

TEST(SpscRing, TwoThreadBulkTransferPreservesSequence)
{
    // Same contract as the per-element stress run, but the producer
    // publishes in bursts through tryPushBulk — the shard engine's
    // staged epoch delivery.
    constexpr std::uint64_t count = 200000;
    SpscRing<std::uint64_t> ring(16);

    std::thread producer([&ring] {
        std::uint64_t next = 0;
        Rng rng(0x615e);
        while (next < count) {
            std::uint64_t batch[5];
            std::uint64_t n =
                std::min<std::uint64_t>(1 + rng.below(5), count - next);
            for (std::uint64_t i = 0; i < n; ++i)
                batch[i] = next + i;
            while (!ring.tryPushBulk(batch, static_cast<std::size_t>(n)))
                std::this_thread::yield();
            next += n;
        }
    });

    std::uint64_t expect = 0;
    while (expect < count) {
        std::uint64_t v = 0;
        if (ring.tryPop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}
