/**
 * @file
 * Statistics framework tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/stats.hh"

using namespace shmgpu::stats;

TEST(Stats, ScalarAccumulates)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h;
    h.init(0, 10, 5);
    h.sample(0.5);  // bucket 0
    h.sample(9.5);  // bucket 4
    h.sample(-3);   // clamps to bucket 0
    h.sample(40);   // clamps to bucket 4
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.data()[0], 2u);
    EXPECT_EQ(h.data()[4], 2u);
    EXPECT_EQ(h.data()[2], 0u);
}

TEST(Stats, HistogramMean)
{
    Histogram h;
    h.init(0, 100, 10);
    h.sample(10);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20);
}

TEST(Stats, GroupDumpPaths)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar a, b;
    a += 1;
    b += 2;
    root.addScalar("a", &a);
    child.addScalar("b", &b, "a nested stat");

    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("root.a 1"), std::string::npos);
    EXPECT_NE(out.find("root.child.b 2"), std::string::npos);
    EXPECT_NE(out.find("# a nested stat"), std::string::npos);
}

TEST(Stats, Lookup)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar s;
    s += 7;
    child.addScalar("x", &s);

    bool found = false;
    EXPECT_DOUBLE_EQ(root.lookup("child.x", &found), 7);
    EXPECT_TRUE(found);
    root.lookup("child.nope", &found);
    EXPECT_FALSE(found);
    root.lookup("nochild.x", &found);
    EXPECT_FALSE(found);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar a, b;
    a += 1;
    b += 1;
    root.addScalar("a", &a);
    child.addScalar("b", &b);
    root.resetAll();
    EXPECT_EQ(a.value(), 0);
    EXPECT_EQ(b.value(), 0);
}

TEST(Stats, LateAttach)
{
    StatGroup root(nullptr, "root");
    StatGroup floating;
    floating.attach(&root, "late");
    Scalar s;
    s += 3;
    floating.addScalar("v", &s);
    bool found = false;
    EXPECT_DOUBLE_EQ(root.lookup("late.v", &found), 3);
    EXPECT_TRUE(found);
}

TEST(Stats, DuplicateNamePanics)
{
    StatGroup g(nullptr, "g");
    Scalar a, b;
    g.addScalar("x", &a);
    EXPECT_DEATH(g.addScalar("x", &b), "duplicate");
}

TEST(Stats, JsonDump)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar a, b;
    a += 1.5;
    b += 2;
    root.addScalar("a", &a);
    child.addScalar("b", &b);

    std::ostringstream os;
    root.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"a\": 1.5"), std::string::npos);
    EXPECT_NE(out.find("\"child\": {"), std::string::npos);
    EXPECT_NE(out.find("\"b\": 2"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

namespace
{

/** A small tree shaped like one shard's private stats: a scalar, a
 *  histogram, and a nested child, all integer-valued. */
struct ShardTree
{
    StatGroup root{nullptr, "sim"};
    StatGroup child{&root, "p0"};
    Scalar requests;
    Scalar bytes;
    Histogram latency;

    ShardTree()
    {
        latency.init(0, 64, 8);
        root.addScalar("requests", &requests);
        child.addScalar("bytes", &bytes);
        child.addHistogram("latency", &latency);
    }

    void
    accumulate(double reqs, double nbytes, double lat_sample)
    {
        requests += reqs;
        bytes += nbytes;
        latency.sample(lat_sample);
    }

    std::string
    dump() const
    {
        std::ostringstream os;
        root.dump(os);
        return os.str();
    }
};

} // namespace

TEST(Stats, MergeFromFoldsScalarsHistogramsAndChildren)
{
    ShardTree target, shard;
    target.accumulate(1, 100, 3);
    shard.accumulate(2, 50, 40);

    target.root.mergeFrom(shard.root);
    EXPECT_DOUBLE_EQ(target.requests.value(), 3);
    EXPECT_DOUBLE_EQ(target.bytes.value(), 150);
    EXPECT_EQ(target.latency.samples(), 2u);
    EXPECT_DOUBLE_EQ(target.latency.mean(), (3.0 + 40.0) / 2.0);
    // The source is untouched; the shard engine resets it separately.
    EXPECT_DOUBLE_EQ(shard.requests.value(), 2);
}

TEST(Stats, MergeFromIsOrderIndependent)
{
    // The shard engine merges per-shard trees at epoch barriers in
    // partition-id order and claims the result equals the serial
    // temporal accumulation: with integer-valued stats the merge must
    // commute. Fold the same three shards in two different orders and
    // in one interleaved "temporal" order and require identical dumps.
    ShardTree shards[3];
    shards[0].accumulate(7, 1024, 5);
    shards[0].accumulate(1, 32, 9);
    shards[1].accumulate(3, 4096, 60);
    shards[2].accumulate(11, 64, 17);

    ShardTree fwd, rev, temporal;
    for (int i : {0, 1, 2})
        fwd.root.mergeFrom(shards[i].root);
    for (int i : {2, 1, 0})
        rev.root.mergeFrom(shards[i].root);
    temporal.accumulate(3, 4096, 60);
    temporal.accumulate(7, 1024, 5);
    temporal.accumulate(11, 64, 17);
    temporal.accumulate(1, 32, 9);

    EXPECT_EQ(fwd.dump(), rev.dump());
    EXPECT_EQ(fwd.dump(), temporal.dump());
}

TEST(Stats, HistogramMergeChecksGeometry)
{
    Histogram a, b;
    a.init(0, 10, 5);
    b.init(0, 10, 5);
    a.sample(1);
    b.sample(9);
    a.merge(b);
    EXPECT_EQ(a.samples(), 2u);
    EXPECT_EQ(a.data()[0], 1u);
    EXPECT_EQ(a.data()[4], 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}
