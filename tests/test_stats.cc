/**
 * @file
 * Statistics framework tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/stats.hh"

using namespace shmgpu::stats;

TEST(Stats, ScalarAccumulates)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h;
    h.init(0, 10, 5);
    h.sample(0.5);  // bucket 0
    h.sample(9.5);  // bucket 4
    h.sample(-3);   // clamps to bucket 0
    h.sample(40);   // clamps to bucket 4
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.data()[0], 2u);
    EXPECT_EQ(h.data()[4], 2u);
    EXPECT_EQ(h.data()[2], 0u);
}

TEST(Stats, HistogramMean)
{
    Histogram h;
    h.init(0, 100, 10);
    h.sample(10);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20);
}

TEST(Stats, GroupDumpPaths)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar a, b;
    a += 1;
    b += 2;
    root.addScalar("a", &a);
    child.addScalar("b", &b, "a nested stat");

    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("root.a 1"), std::string::npos);
    EXPECT_NE(out.find("root.child.b 2"), std::string::npos);
    EXPECT_NE(out.find("# a nested stat"), std::string::npos);
}

TEST(Stats, Lookup)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar s;
    s += 7;
    child.addScalar("x", &s);

    bool found = false;
    EXPECT_DOUBLE_EQ(root.lookup("child.x", &found), 7);
    EXPECT_TRUE(found);
    root.lookup("child.nope", &found);
    EXPECT_FALSE(found);
    root.lookup("nochild.x", &found);
    EXPECT_FALSE(found);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar a, b;
    a += 1;
    b += 1;
    root.addScalar("a", &a);
    child.addScalar("b", &b);
    root.resetAll();
    EXPECT_EQ(a.value(), 0);
    EXPECT_EQ(b.value(), 0);
}

TEST(Stats, LateAttach)
{
    StatGroup root(nullptr, "root");
    StatGroup floating;
    floating.attach(&root, "late");
    Scalar s;
    s += 3;
    floating.addScalar("v", &s);
    bool found = false;
    EXPECT_DOUBLE_EQ(root.lookup("late.v", &found), 3);
    EXPECT_TRUE(found);
}

TEST(Stats, DuplicateNamePanics)
{
    StatGroup g(nullptr, "g");
    Scalar a, b;
    g.addScalar("x", &a);
    EXPECT_DEATH(g.addScalar("x", &b), "duplicate");
}

TEST(Stats, JsonDump)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Scalar a, b;
    a += 1.5;
    b += 2;
    root.addScalar("a", &a);
    child.addScalar("b", &b);

    std::ostringstream os;
    root.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"a\": 1.5"), std::string::npos);
    EXPECT_NE(out.find("\"child\": {"), std::string::npos);
    EXPECT_NE(out.find("\"b\": 2"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}
