/**
 * @file
 * Cross-scheme end-to-end invariants, parameterized over every
 * Table VIII design: determinism, metadata accounting, and the
 * ordering relations the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "gpu/simulator.hh"

using namespace shmgpu;

namespace
{

gpu::GpuParams
quickParams()
{
    gpu::GpuParams p;
    p.maxCyclesPerKernel = 25000;
    return p;
}

} // namespace

class SchemeInvariants
    : public ::testing::TestWithParam<schemes::Scheme>
{
};

TEST_P(SchemeInvariants, RunsAndStaysBelowBaseline)
{
    core::Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    auto r = exp.run(GetParam(), w);
    EXPECT_GT(r.normalizedIpc, 0.0);
    EXPECT_LE(r.normalizedIpc, 1.01)
        << "secure memory cannot beat the no-security baseline";
    EXPECT_GT(r.metrics.metadataBytes(), 0u);
    EXPECT_GE(r.normalizedEnergyPerInstr, 0.99);
}

TEST_P(SchemeInvariants, Deterministic)
{
    core::Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    auto a = exp.run(GetParam(), w);
    auto b = exp.run(GetParam(), w);
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.metadataBytes(), b.metrics.metadataBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeInvariants,
    ::testing::ValuesIn(schemes::allSchemes()),
    [](const ::testing::TestParamInfo<schemes::Scheme> &info) {
        std::string name = schemes::schemeName(info.param);
        for (char &c : name)
            if (c == '+' || c == '-')
                c = '_';
        return name;
    });

TEST(IntegrationOrdering, ShmNeverBelowPssmOnStreams)
{
    core::Experiment exp(quickParams());
    auto w = workload::makeStreamingMicro(8 << 20, 4096);
    auto pssm = exp.run(schemes::Scheme::Pssm, w);
    auto shm = exp.run(schemes::Scheme::Shm, w);
    EXPECT_GE(shm.normalizedIpc, pssm.normalizedIpc * 0.995);
}

TEST(IntegrationOrdering, UpperBoundDominatesShm)
{
    core::Experiment exp(quickParams());
    for (auto make : {workload::makeStreamingMicro(4 << 20, 2048),
                      workload::makeRandomMicro(4 << 20, 2048)}) {
        auto shm = exp.run(schemes::Scheme::Shm, make);
        auto ub = exp.run(schemes::Scheme::ShmUpperBound, make);
        EXPECT_GE(ub.normalizedIpc, shm.normalizedIpc * 0.97)
            << make.name;
    }
}

TEST(IntegrationOrdering, LocalAddressingBeatsPhysical)
{
    core::Experiment exp(quickParams());
    auto w = workload::makeStreamingMicro(8 << 20, 4096);
    auto naive = exp.run(schemes::Scheme::Naive, w);
    auto pssm = exp.run(schemes::Scheme::Pssm, w);
    EXPECT_GT(pssm.normalizedIpc, naive.normalizedIpc);
    EXPECT_LT(pssm.metrics.metadataBytes(),
              naive.metrics.metadataBytes());
}

TEST(IntegrationAccounting, MetadataSplitsSumToTotal)
{
    core::Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    auto r = exp.run(schemes::Scheme::Shm, w);
    EXPECT_EQ(r.metrics.metadataBytes(),
              r.metrics.bytesCounter + r.metrics.bytesMac +
                  r.metrics.bytesBmt + r.metrics.bytesExtra);
    EXPECT_NEAR(r.metrics.metadataOverhead(),
                static_cast<double>(r.metrics.metadataBytes()) /
                    static_cast<double>(r.metrics.bytesData),
                1e-12);
}

TEST(IntegrationAccounting, BaselineEnergyEqualsUnity)
{
    core::Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    const auto &base = exp.baselineFor(w);
    gpu::EnergyParams ep;
    double epi = gpu::energyPerInstruction(ep, base.energy);
    EXPECT_GT(epi, 0.0);
}
