/**
 * @file
 * Backing-store tests.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/backing_store.hh"

using namespace shmgpu;
using namespace shmgpu::mem;
using shmgpu::crypto::DataBlock;

TEST(BackingStore, ReadsZeroWhenUntouched)
{
    BackingStore s;
    DataBlock b = s.readBlock(0x1000);
    for (auto byte : b)
        EXPECT_EQ(byte, 0);
    EXPECT_EQ(s.blocksAllocated(), 0u);
}

TEST(BackingStore, WriteReadRoundTrip)
{
    BackingStore s;
    DataBlock b;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>(i + 1);
    s.writeBlock(0x1000, b);
    EXPECT_EQ(s.readBlock(0x1000), b);
    EXPECT_EQ(s.blocksAllocated(), 1u);
}

TEST(BackingStore, UnalignedAddressResolvesToBlock)
{
    BackingStore s;
    DataBlock b{};
    b[0] = 0xAA;
    s.writeBlock(0x1010, b); // aligns down to 0x1000
    EXPECT_EQ(s.readBlock(0x1000)[0], 0xAA);
}

TEST(BackingStore, ByteRangeSpanningBlocks)
{
    BackingStore s;
    std::uint8_t data[300];
    for (int i = 0; i < 300; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    s.write(0x1070, data, sizeof(data)); // crosses three blocks

    std::uint8_t out[300];
    s.read(0x1070, out, sizeof(out));
    EXPECT_EQ(std::memcmp(data, out, sizeof(data)), 0);
}

TEST(BackingStore, CorruptByteFlipsExactlyOneByte)
{
    BackingStore s;
    DataBlock b{};
    s.writeBlock(0, b);
    s.corruptByte(5, 0x80);
    DataBlock out = s.readBlock(0);
    EXPECT_EQ(out[5], 0x80);
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (i != 5)
            EXPECT_EQ(out[i], 0);
    }
    // Corrupting again restores (XOR).
    s.corruptByte(5, 0x80);
    EXPECT_EQ(s.readBlock(0)[5], 0);
}
