/**
 * @file
 * SipHash-2-4 reference-vector and incremental-interface tests.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/siphash.hh"

using namespace shmgpu::crypto;

namespace
{

/** The reference key 000102...0f as two little-endian words. */
SipKey
referenceKey()
{
    return {0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
}

} // namespace

// First entries of the official SipHash-2-4 test-vector table
// (Aumasson & Bernstein reference implementation, vectors_sip64):
// input is 00, 01, 02, ... of increasing length.
TEST(SipHash, ReferenceVectors)
{
    const std::uint64_t expected[] = {
        0x726fdb47dd0e0e31ull, // len 0
        0x74f839c593dc67fdull, // len 1
        0x0d6c8009d9a94f5aull, // len 2
        0x85676696d7fb7e2dull, // len 3
        0xcf2794e0277187b7ull, // len 4
        0x18765564cd99a68dull, // len 5
        0xcbc9466e58fee3ceull, // len 6
        0xab0200f58b01d137ull, // len 7
        0x93f5f5799a932462ull, // len 8
        0x9e0082df0ba9e4b0ull, // len 9
    };
    std::uint8_t data[16];
    for (int i = 0; i < 16; ++i)
        data[i] = static_cast<std::uint8_t>(i);

    for (std::size_t len = 0; len < std::size(expected); ++len)
        EXPECT_EQ(siphash24(referenceKey(), data, len), expected[len])
            << "length " << len;
}

TEST(SipHash, IncrementalMatchesOneShot)
{
    std::uint8_t data[40];
    for (int i = 0; i < 40; ++i)
        data[i] = static_cast<std::uint8_t>(i * 7 + 1);

    std::uint64_t oneshot = siphash24(referenceKey(), data, sizeof(data));

    SipHasher h(referenceKey());
    h.update(data, 3);
    h.update(data + 3, 20);
    h.update(data + 23, 17);
    EXPECT_EQ(h.digest(), oneshot);
}

TEST(SipHash, UpdateU64MatchesBytes)
{
    std::uint64_t v = 0x1122334455667788ull;
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));

    SipHasher a(referenceKey());
    a.updateU64(v);
    SipHasher b(referenceKey());
    b.update(bytes, 8);
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(SipHash, KeySeparation)
{
    std::uint8_t data[4] = {1, 2, 3, 4};
    SipKey k1{1, 2};
    SipKey k2{1, 3};
    EXPECT_NE(siphash24(k1, data, 4), siphash24(k2, data, 4));
}

TEST(SipHash, LengthSeparation)
{
    // Same prefix, different lengths => different tags (length is
    // folded into the final block).
    std::uint8_t data[9] = {};
    EXPECT_NE(siphash24(referenceKey(), data, 8),
              siphash24(referenceKey(), data, 9));
}

TEST(SipHash, ReuseAfterDigestPanics)
{
    SipHasher h(referenceKey());
    h.updateU64(1);
    h.digest();
    EXPECT_DEATH(h.updateU64(2), "reused");
}
