/**
 * @file
 * InputReadOnlyReset reset-then-reuse semantics, exercised directly at
 * every layer that implements a piece of it: the read-only predictor's
 * resetReadOnly/reset, the streaming detector's reset, the shared
 * counter's raiseAbove, and the functional context's full
 * inputReadOnlyReset (Fig. 9) — the machinery the scenario engine's
 * context switches are built from.
 */

#include <gtest/gtest.h>

#include "detect/readonly.hh"
#include "detect/streaming.hh"
#include "mee/functional.hh"
#include "meta/counters.hh"

using namespace shmgpu;
using shmgpu::crypto::DataBlock;
using shmgpu::mee::SecureMemoryContext;

namespace
{

constexpr std::uint64_t kRegion = 16 * 1024;

DataBlock
pattern(std::uint8_t seed)
{
    DataBlock b;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>(seed + i * 7);
    return b;
}

} // namespace

TEST(ReadOnlyReset, ResetReadOnlyReArmsWrittenRegions)
{
    detect::ReadOnlyDetector det(detect::ReadOnlyDetectorParams{});
    det.markInputRegion(0, 2 * kRegion);
    ASSERT_TRUE(det.isReadOnly(0));
    ASSERT_TRUE(det.isReadOnly(kRegion));

    // A kernel write clears the bit and reports the transition once.
    EXPECT_TRUE(det.recordWrite(128));
    EXPECT_FALSE(det.isReadOnly(0));
    EXPECT_FALSE(det.recordWrite(256)); // already cleared
    EXPECT_EQ(det.causeFor(0), detect::NotReadOnlyCause::WrittenSelf);

    // InputReadOnlyReset re-arms exactly the covered range.
    det.resetReadOnly(0, kRegion);
    EXPECT_TRUE(det.isReadOnly(0));
    EXPECT_TRUE(det.isReadOnly(kRegion)); // untouched, still armed

    // Reuse after the reset behaves like a fresh region: the next
    // write is again a transition.
    EXPECT_TRUE(det.recordWrite(0));
}

TEST(ReadOnlyReset, FullResetDropsProvenance)
{
    detect::ReadOnlyDetector det(detect::ReadOnlyDetectorParams{});
    det.markInputRegion(0, kRegion);
    det.recordWrite(0);
    ASSERT_EQ(det.causeFor(0), detect::NotReadOnlyCause::WrittenSelf);

    // Context switch: everything back to power-on defaults, so one
    // tenant's write provenance cannot leak into the next tenant's
    // misprediction attribution.
    det.reset();
    EXPECT_FALSE(det.isReadOnly(0));
    EXPECT_EQ(det.causeFor(0), detect::NotReadOnlyCause::NeverSet);

    // The switch-in re-arm path is a plain markInputRegion replay.
    det.markInputRegion(0, kRegion);
    EXPECT_TRUE(det.isReadOnly(0));
    EXPECT_EQ(det.causeFor(2 * kRegion),
              detect::NotReadOnlyCause::NeverSet);
}

TEST(ReadOnlyReset, StreamingDetectorResetForgetsPhases)
{
    detect::StreamingDetectorParams p;
    detect::StreamingDetector det(p);
    // Open a monitoring phase, then reset mid-phase (the context
    // switch runs finalizeAll first; this checks reset alone leaves
    // no tracker or classification behind).
    std::vector<detect::DetectionEvent> events;
    det.access(0, /*is_write=*/false, 0, events);
    det.reset();

    std::vector<detect::DetectionEvent> after;
    det.finalizeAll(1000, after);
    EXPECT_TRUE(after.empty()) << "reset() left a live tracker";
}

TEST(ReadOnlyReset, SharedCounterRaiseIsMonotonic)
{
    meta::SharedCounter c;
    const std::uint64_t start = c.value();
    c.raiseAbove(41);
    EXPECT_GT(c.value(), 41u);
    const std::uint64_t raised = c.value();
    // Raising above an already-passed maximum still advances — the
    // new (shared, 0) pair must be fresh even if the scan maxed below
    // the current value.
    c.raiseAbove(0);
    EXPECT_GT(c.value(), raised);
    EXPECT_GT(c.value(), start);
}

TEST(ReadOnlyReset, FunctionalResetThenReuseWithReencrypt)
{
    meta::LayoutParams lp;
    lp.dataBytes = 1 << 20;
    SecureMemoryContext ctx(lp, 99);

    DataBlock input = pattern(3);
    ctx.hostWrite(0x8000, input);
    ASSERT_TRUE(ctx.isReadOnly(0x8000));

    // Kernel writes devolve the region to per-block counters.
    DataBlock output = pattern(9);
    ctx.deviceWrite(0x8000, output);
    ASSERT_FALSE(ctx.isReadOnly(0x8000));
    const std::uint64_t before = ctx.sharedCounter().value();

    // Fig. 9 option (b): reset with re-encryption keeps the content
    // readable under the raised shared counter.
    ctx.inputReadOnlyReset(0x8000, 128, /*reencrypt=*/true);
    EXPECT_GT(ctx.sharedCounter().value(), before);
    EXPECT_TRUE(ctx.isReadOnly(0x8000));
    auto r = ctx.deviceRead(0x8000);
    EXPECT_EQ(r.status, mee::VerifyStatus::Ok);
    EXPECT_EQ(r.data, output);
}

TEST(ReadOnlyReset, FunctionalResetThenReuseWithFreshCopy)
{
    meta::LayoutParams lp;
    lp.dataBytes = 1 << 20;
    SecureMemoryContext ctx(lp, 99);

    ctx.hostWrite(0x8000, pattern(3));
    ctx.deviceWrite(0x8000, pattern(9));

    // The common multi-kernel reuse pattern: reset without
    // re-encryption, then the host copies fresh input. The new
    // (shared', 0) pad is used exactly once and the block round-trips.
    ctx.inputReadOnlyReset(0x8000, 128, /*reencrypt=*/false);
    EXPECT_TRUE(ctx.isReadOnly(0x8000));

    DataBlock fresh = pattern(27);
    ctx.hostWrite(0x8000, fresh);
    auto r = ctx.deviceRead(0x8000);
    EXPECT_EQ(r.status, mee::VerifyStatus::Ok);
    EXPECT_EQ(r.data, fresh);

    // Other read-only regions followed the raise and stay readable.
    DataBlock side = pattern(33);
    ctx.hostWrite(0x10000, side);
    ctx.inputReadOnlyReset(0x8000, 128, /*reencrypt=*/false);
    auto r2 = ctx.deviceRead(0x10000);
    EXPECT_EQ(r2.status, mee::VerifyStatus::Ok);
    EXPECT_EQ(r2.data, side);
}
