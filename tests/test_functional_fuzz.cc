/**
 * @file
 * Property-based fuzzing of the functional secure-memory context: a
 * long random mix of host copies, kernel reads/writes, region resets
 * and re-encryptions must always decrypt to exactly what a plain
 * reference model holds — and randomly injected physical attacks must
 * always be detected.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "mee/functional.hh"

using namespace shmgpu;
using namespace shmgpu::mee;
using shmgpu::crypto::DataBlock;

namespace
{

constexpr std::uint64_t kSpace = 1 << 20; // 8192 blocks
constexpr int kBlocks = kSpace / 128;

meta::LayoutParams
layoutParams()
{
    meta::LayoutParams p;
    p.dataBytes = kSpace;
    return p;
}

DataBlock
randomBlock(Rng &rng)
{
    DataBlock b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

} // namespace

class FunctionalFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FunctionalFuzz, RandomOperationMixMatchesReference)
{
    Rng rng(GetParam());
    SecureMemoryContext ctx(layoutParams(), GetParam());
    std::map<LocalAddr, DataBlock> reference;

    for (int step = 0; step < 3000; ++step) {
        LocalAddr addr = rng.below(kBlocks) * 128;
        switch (rng.below(10)) {
          case 0:
          case 1: { // host copy (read-only marking)
            DataBlock b = randomBlock(rng);
            ctx.hostWrite(addr, b, /*mark_read_only=*/true);
            reference[addr] = b;
            break;
          }
          case 2: { // host copy without marking
            DataBlock b = randomBlock(rng);
            ctx.hostWrite(addr, b, /*mark_read_only=*/false);
            reference[addr] = b;
            break;
          }
          case 3:
          case 4:
          case 5: { // kernel write (may trigger RO transitions)
            DataBlock b = randomBlock(rng);
            ctx.deviceWrite(addr, b);
            reference[addr] = b;
            break;
          }
          case 6: { // InputReadOnlyReset over an aligned 16 KB region
            LocalAddr base = addr / (16 * 1024) * (16 * 1024);
            ctx.inputReadOnlyReset(base, 16 * 1024,
                                   /*reencrypt=*/true);
            break;
          }
          default: { // read + verify
            if (reference.empty())
                break;
            auto it = reference.lower_bound(addr);
            if (it == reference.end())
                it = reference.begin();
            auto r = ctx.deviceRead(it->first);
            ASSERT_EQ(r.status, VerifyStatus::Ok)
                << "step " << step << " addr " << it->first;
            ASSERT_EQ(r.data, it->second)
                << "step " << step << " addr " << it->first;
            break;
          }
        }
    }

    // Full final sweep: every written block reads back exactly.
    for (const auto &[addr, plain] : reference) {
        auto r = ctx.deviceRead(addr);
        ASSERT_EQ(r.status, VerifyStatus::Ok) << "addr " << addr;
        ASSERT_EQ(r.data, plain) << "addr " << addr;
    }
}

TEST_P(FunctionalFuzz, RandomAttacksAlwaysDetected)
{
    Rng rng(GetParam() ^ 0xA77AC4);
    SecureMemoryContext ctx(layoutParams(), GetParam());

    // Populate a mixed read-only / writable state.
    std::vector<LocalAddr> addrs;
    for (int i = 0; i < 256; ++i) {
        LocalAddr addr = rng.below(kBlocks) * 128;
        ctx.hostWrite(addr, randomBlock(rng), rng.chance(0.5));
        if (rng.chance(0.3))
            ctx.deviceWrite(addr, randomBlock(rng));
        addrs.push_back(addr);
    }

    int detected = 0, attacks = 0;
    for (int trial = 0; trial < 128; ++trial) {
        LocalAddr victim = addrs[rng.below(addrs.size())];
        ASSERT_EQ(ctx.deviceRead(victim).status, VerifyStatus::Ok);

        ++attacks;
        switch (rng.below(3)) {
          case 0: // flip a random ciphertext bit
            ctx.memory().corruptByte(victim + rng.below(128),
                                     static_cast<std::uint8_t>(
                                         1u << rng.below(8)));
            break;
          case 1: // corrupt the stored MAC
            ctx.macStore().corruptBlockMac(victim, 1ull
                                                       << rng.below(64));
            break;
          case 2: { // splice with another block's ciphertext
            LocalAddr other = addrs[rng.below(addrs.size())];
            if (other == victim) {
                ctx.memory().corruptByte(victim);
                break;
            }
            ctx.memory().writeBlock(victim,
                                    ctx.memory().readBlock(other));
            break;
          }
        }
        auto r = ctx.deviceRead(victim);
        detected += (r.status != VerifyStatus::Ok);

        // Heal the victim for the next round.
        ctx.deviceWrite(victim, randomBlock(rng));
        ASSERT_EQ(ctx.deviceRead(victim).status, VerifyStatus::Ok);
    }
    EXPECT_EQ(detected, attacks) << "an attack slipped through";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionalFuzz,
                         ::testing::Values(1ull, 42ull, 1234ull,
                                           0xDEADBEEFull));
