/**
 * @file
 * GDDR channel model tests: bandwidth accounting, row behaviour,
 * queueing, traffic classes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/dram.hh"

using namespace shmgpu;
using namespace shmgpu::mem;

namespace
{

DramParams
params()
{
    DramParams p;
    p.bytesPerCycle = 16.0;
    p.numBanks = 16;
    p.rowBytes = 2048;
    p.rowHitLatency = 40;
    p.rowMissLatency = 110;
    return p;
}

} // namespace

TEST(Dram, SingleAccessLatency)
{
    DramChannel ch(params());
    // Cold access: row miss => activate penalty + CAS + burst.
    DramResult r = ch.enqueue(0, 0, 32, AccessType::Read,
                              TrafficClass::Data);
    EXPECT_EQ(r.complete, (110 - 40) + 40 + 2u);
}

TEST(Dram, RowHitIsFaster)
{
    DramChannel ch(params());
    Cycle miss = ch.enqueue(0, 0, 32, AccessType::Read,
                            TrafficClass::Data)
                     .complete;
    // Same row, issued much later (no queueing): only CAS + burst.
    Cycle hit = ch.enqueue(1000, 64, 32, AccessType::Read,
                           TrafficClass::Data)
                    .complete;
    EXPECT_EQ(hit - 1000, 40 + 2u);
    EXPECT_GT(miss, 40 + 2u);
}

TEST(Dram, BusSerializesBackToBackBursts)
{
    DramChannel ch(params());
    Cycle first = ch.enqueue(0, 0, 32, AccessType::Read,
                             TrafficClass::Data)
                      .complete;
    // Same cycle, same row: the data bus serializes the bursts.
    Cycle second = ch.enqueue(0, 64, 32, AccessType::Read,
                              TrafficClass::Data)
                       .complete;
    EXPECT_EQ(second, first + 2);
}

TEST(Dram, SaturatedThroughputMatchesPeak)
{
    DramChannel ch(params());
    // Stream 4 KB of sectors issued at time 0: total transfer time is
    // bytes / bytesPerCycle once the pipe fills.
    Cycle last = 0;
    for (int i = 0; i < 128; ++i)
        last = ch.enqueue(0, Addr{static_cast<std::uint64_t>(i)} * 32, 32,
                          AccessType::Read, TrafficClass::Data)
                   .complete;
    // 128 sectors x 2 cycles = 256 cycles of bus time (+ startup).
    EXPECT_GE(last, 256u);
    EXPECT_LE(last, 256u + 200u);
    EXPECT_EQ(ch.busBusyCycles(), 256u);
}

TEST(Dram, SchedulerRowWindowToleratesInterleavedStreams)
{
    stats::StatGroup root(nullptr, "root");
    DramChannel ch(params());
    ch.regStats(&root);
    // Two interleaved streams in different rows of the same bank: the
    // FR-FCFS window should keep both rows effectively open, so only
    // the two initial activations miss.
    std::uint64_t row_a = 0;
    std::uint64_t row_b = 16; // same bank (16 banks, row % 16)
    for (int i = 0; i < 32; ++i) {
        ch.enqueue(Cycle{static_cast<std::uint64_t>(i)} * 4,
                   (i % 2 ? row_b : row_a) * 2048 +
                       static_cast<std::uint64_t>(i / 2) * 32,
                   32, AccessType::Read, TrafficClass::Data);
    }
    bool found = false;
    EXPECT_EQ(root.lookup("dram.row_misses", &found), 2);
    EXPECT_TRUE(found);
    EXPECT_EQ(root.lookup("dram.row_hits", &found), 30);
}

TEST(Dram, TrafficClassAccounting)
{
    DramChannel ch(params());
    ch.enqueue(0, 0, 32, AccessType::Read, TrafficClass::Data);
    ch.enqueue(0, 64, 64, AccessType::Write, TrafficClass::Counter);
    ch.enqueue(0, 128, 32, AccessType::Read, TrafficClass::Mac);
    ch.enqueue(0, 256, 32, AccessType::Read, TrafficClass::Bmt);
    ch.enqueue(0, 512, 32, AccessType::Read, TrafficClass::Extra);

    EXPECT_EQ(ch.bytesMoved(TrafficClass::Data), 32u);
    EXPECT_EQ(ch.bytesMoved(TrafficClass::Counter), 64u);
    EXPECT_EQ(ch.bytesMoved(TrafficClass::Mac), 32u);
    EXPECT_EQ(ch.bytesMoved(TrafficClass::Bmt), 32u);
    EXPECT_EQ(ch.bytesMoved(TrafficClass::Extra), 32u);
    EXPECT_EQ(ch.totalBytes(), 192u);
}

TEST(Dram, CompletionsAreMonotonicInQueueOrder)
{
    DramChannel ch(params());
    Cycle prev = 0;
    for (int i = 0; i < 100; ++i) {
        Cycle done = ch.enqueue(Cycle{static_cast<std::uint64_t>(i)},
                                Addr{static_cast<std::uint64_t>(i)} * 4096,
                                32, AccessType::Read, TrafficClass::Data)
                         .complete;
        EXPECT_GE(done, prev);
        prev = done;
    }
}

TEST(Dram, ZeroByteTransactionPanics)
{
    DramChannel ch(params());
    EXPECT_DEATH(ch.enqueue(0, 0, 0, AccessType::Read,
                            TrafficClass::Data),
                 "zero-byte");
}

TEST(Dram, LargeBurstScalesWithSize)
{
    DramChannel ch(params());
    Cycle small = ch.enqueue(0, 0, 32, AccessType::Read,
                             TrafficClass::Data)
                      .complete;
    DramChannel ch2(params());
    Cycle large = ch2.enqueue(0, 0, 4096, AccessType::Read,
                              TrafficClass::Data)
                      .complete;
    EXPECT_EQ(large - small, (4096 - 32) / 16u);
}

#include <sstream>

TEST(Dram, StatsRegistration)
{
    stats::StatGroup root(nullptr, "root");
    DramChannel ch(params());
    ch.regStats(&root);
    ch.enqueue(0, 0, 32, AccessType::Read, TrafficClass::Data);
    bool found = false;
    EXPECT_EQ(root.lookup("dram.reads", &found), 1);
    EXPECT_TRUE(found);
    EXPECT_EQ(root.lookup("dram.bytes", &found), 32);
}

TEST(Dram, WritesAreParkedBehindReads)
{
    DramChannel ch(params());
    // A write burst...
    for (int i = 0; i < 8; ++i)
        ch.enqueue(0, Addr{static_cast<std::uint64_t>(i)} * 32, 32,
                   AccessType::Write, TrafficClass::Data);
    EXPECT_GT(ch.pendingWrites(), 0u);
    // ...does not delay an immediately following read (read priority).
    Cycle read_done = ch.enqueue(0, 4096, 32, AccessType::Read,
                                 TrafficClass::Data)
                          .complete;
    EXPECT_LE(read_done, (110 - 40) + 40 + 2u);
}

TEST(Dram, WriteQueueDrainsDuringIdleGaps)
{
    DramChannel ch(params());
    for (int i = 0; i < 8; ++i)
        ch.enqueue(0, Addr{static_cast<std::uint64_t>(i)} * 32, 32,
                   AccessType::Write, TrafficClass::Data);
    Cycle backlog = ch.pendingWrites();
    EXPECT_GT(backlog, 0u);
    // A read far in the future sees the backlog drained for free.
    ch.enqueue(100000, 4096, 32, AccessType::Read, TrafficClass::Data);
    EXPECT_EQ(ch.pendingWrites(), 0u);
}

TEST(Dram, FullWriteQueueBlocksReads)
{
    DramParams p = params();
    p.writeQueueCycles = 16;
    DramChannel ch(p);
    // Saturate the write queue well past its capacity.
    for (int i = 0; i < 64; ++i)
        ch.enqueue(0, Addr{static_cast<std::uint64_t>(i)} * 32, 32,
                   AccessType::Write, TrafficClass::Data);
    // The forced drain pushes the bus timeline out, delaying reads:
    // bandwidth is conserved even under read-priority scheduling.
    Cycle read_done = ch.enqueue(0, 4096, 32, AccessType::Read,
                                 TrafficClass::Data)
                          .complete;
    EXPECT_GT(read_done, 64u * 2u - 16u);
}
