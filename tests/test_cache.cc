/**
 * @file
 * Sectored cache tests: hits/misses, sector masks, LRU, MSHRs,
 * write-validate, evictions, victim insertion, flush.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace shmgpu;
using namespace shmgpu::mem;

namespace
{

CacheParams
smallParams()
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 2048; // 16 lines
    p.blockBytes = 128;
    p.sectorBytes = 32;
    p.assoc = 4; // 4 sets
    p.mshrs = 8;
    p.mshrMergeMax = 4;
    return p;
}

} // namespace

TEST(Cache, ColdMissThenHitAfterFill)
{
    SectoredCache c(smallParams());
    auto r = c.access(0x1000, 32, false);
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    EXPECT_EQ(r.fetchMask, 0x1u);

    c.fill(0x1000, r.fetchMask);
    EXPECT_EQ(c.access(0x1000, 32, false).outcome, CacheOutcome::Hit);
}

TEST(Cache, SectorGranularity)
{
    SectoredCache c(smallParams());
    auto r = c.access(0x1000, 32, false);
    c.fill(0x1000, r.fetchMask);

    // Same block, different sector: sector miss.
    auto r2 = c.access(0x1000 + 64, 32, false);
    EXPECT_EQ(r2.outcome, CacheOutcome::Miss);
    EXPECT_EQ(r2.fetchMask, 0x4u);
}

TEST(Cache, MultiSectorAccessMask)
{
    SectoredCache c(smallParams());
    auto r = c.access(0x1000, 128, false);
    EXPECT_EQ(r.fetchMask, 0xFu);
    auto r2 = c.access(0x1020, 64, false);
    EXPECT_EQ(r2.outcome, CacheOutcome::MshrMerged);
}

TEST(Cache, CrossBlockAccessPanics)
{
    SectoredCache c(smallParams());
    EXPECT_DEATH(c.access(0x1000 + 96, 64, false), "block boundary");
}

TEST(Cache, MshrMergeAndExhaustion)
{
    SectoredCache c(smallParams());
    // First miss allocates the MSHR.
    EXPECT_EQ(c.access(0x2000, 32, false).outcome, CacheOutcome::Miss);
    // Same sector again: merged, nothing new to fetch.
    EXPECT_EQ(c.access(0x2000, 32, false).outcome,
              CacheOutcome::MshrMerged);
    EXPECT_EQ(c.access(0x2000, 32, false).outcome,
              CacheOutcome::MshrMerged);
    // Merge limit is 4 (1 primary + 3 merges): the next one stalls.
    EXPECT_EQ(c.access(0x2000, 32, false).outcome,
              CacheOutcome::MshrMerged);
    EXPECT_EQ(c.access(0x2000, 32, false).outcome, CacheOutcome::NoMshr);
}

TEST(Cache, MshrTableExhaustion)
{
    CacheParams p = smallParams();
    p.mshrs = 2;
    SectoredCache c(p);
    EXPECT_EQ(c.access(0x0000, 32, false).outcome, CacheOutcome::Miss);
    EXPECT_EQ(c.access(0x1000, 32, false).outcome, CacheOutcome::Miss);
    EXPECT_EQ(c.access(0x2000, 32, false).outcome, CacheOutcome::NoMshr);
    EXPECT_FALSE(c.mshrAvailable(0x3000));
    c.fill(0x0000, 0x1);
    EXPECT_TRUE(c.mshrAvailable(0x3000));
}

TEST(Cache, WriteValidateAllocatesWithoutFetch)
{
    SectoredCache c(smallParams());
    auto r = c.access(0x3000, 32, true);
    EXPECT_EQ(r.outcome, CacheOutcome::WriteNoFetch);
    EXPECT_FALSE(c.takeInsertWriteback().valid);
    // The written sector is now valid and dirty.
    EXPECT_EQ(c.access(0x3000, 32, false).outcome, CacheOutcome::Hit);
    Writeback wb = c.invalidate(0x3000);
    EXPECT_TRUE(wb.valid);
    EXPECT_EQ(wb.dirtyMask, 0x1u);
}

TEST(Cache, RmwWriteMissFetches)
{
    CacheParams p = smallParams();
    p.fetchOnWriteMiss = true;
    SectoredCache c(p);
    auto r = c.access(0x3000, 32, true);
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    EXPECT_EQ(r.fetchMask, 0x1u);
    c.fill(0x3000, r.fetchMask);
    // The pending write dirtied the sector at fill time.
    Writeback wb = c.invalidate(0x3000);
    EXPECT_TRUE(wb.valid);
    EXPECT_EQ(wb.dirtyMask, 0x1u);
}

TEST(Cache, LruEviction)
{
    CacheParams p = smallParams();
    p.assoc = 2;
    p.sizeBytes = 2 * 128; // 1 set, 2 ways
    SectoredCache c(p);

    c.fill(0x0000, 0xF);
    c.fill(0x0080, 0xF);
    // Touch the first line so the second is LRU.
    EXPECT_EQ(c.access(0x0000, 32, false).outcome, CacheOutcome::Hit);
    c.fill(0x0100, 0xF); // evicts 0x0080
    EXPECT_EQ(c.probe(0x0080), 0u);
    EXPECT_NE(c.probe(0x0000), 0u);
    EXPECT_NE(c.probe(0x0100), 0u);
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    CacheParams p = smallParams();
    p.assoc = 1;
    p.sizeBytes = 128; // direct-mapped single line
    SectoredCache c(p);

    c.access(0x0000, 32, true); // dirty via write-validate
    Writeback wb = c.fill(0x1000, 0xF); // evicts the dirty line
    EXPECT_TRUE(wb.valid);
    EXPECT_EQ(wb.blockAddr, 0x0000u);
    EXPECT_EQ(wb.dirtyMask, 0x1u);
}

TEST(Cache, CleanEvictionSilent)
{
    CacheParams p = smallParams();
    p.assoc = 1;
    p.sizeBytes = 128;
    SectoredCache c(p);
    c.fill(0x0000, 0xF);
    EXPECT_FALSE(c.fill(0x1000, 0xF).valid);
}

TEST(Cache, InsertVictimPath)
{
    SectoredCache c(smallParams());
    Writeback wb = c.insert(0x5000, 0xF, 0x3);
    EXPECT_FALSE(wb.valid);
    EXPECT_EQ(c.probe(0x5000), 0xFu);
    Writeback out = c.invalidate(0x5000);
    EXPECT_EQ(out.dirtyMask, 0x3u);
}

TEST(Cache, FlushDirty)
{
    SectoredCache c(smallParams());
    c.access(0x0000, 32, true);
    c.access(0x1000, 32, true);
    c.fill(0x2000, 0xF); // clean line

    std::vector<Writeback> wbs;
    c.flushDirty(wbs);
    EXPECT_EQ(wbs.size(), 2u);
    // Flushing again finds nothing.
    wbs.clear();
    c.flushDirty(wbs);
    EXPECT_TRUE(wbs.empty());
}

TEST(Cache, StatsRegistration)
{
    stats::StatGroup root(nullptr, "root");
    SectoredCache c(smallParams());
    c.regStats(&root);
    c.access(0x0000, 32, false);
    bool found = false;
    EXPECT_EQ(root.lookup("test.misses", &found), 1);
    EXPECT_TRUE(found);
}

// Property sweep: for any geometry, filling then re-accessing always
// hits, and distinct blocks never alias.
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(CacheGeometry, FillThenHit)
{
    auto [size, assoc] = GetParam();
    CacheParams p = smallParams();
    p.sizeBytes = size;
    p.assoc = assoc;
    p.mshrs = 512;
    SectoredCache c(p);

    std::uint64_t lines = size / p.blockBytes;
    for (std::uint64_t i = 0; i < lines; ++i) {
        auto r = c.access(i * 128, 32, false);
        ASSERT_EQ(r.outcome, CacheOutcome::Miss);
        c.fill(i * 128, r.fetchMask);
    }
    // Everything fits: all hits.
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_EQ(c.access(i * 128, 32, false).outcome,
                  CacheOutcome::Hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(2048ull, 4u),
                      std::make_tuple(2048ull, 16u),
                      std::make_tuple(128ull * 1024, 16u),
                      std::make_tuple(4096ull, 1u),
                      std::make_tuple(4096ull, 2u)));

TEST(Cache, FifoIgnoresRecency)
{
    CacheParams p = smallParams();
    p.assoc = 2;
    p.sizeBytes = 2 * 128;
    p.policy = PolicyKind::Fifo;
    SectoredCache c(p);

    c.fill(0x0000, 0xF);
    c.fill(0x0080, 0xF);
    // Touch the first line: under LRU this would protect it, under
    // FIFO it is still the oldest and gets evicted.
    c.access(0x0000, 32, false);
    c.fill(0x0100, 0xF);
    EXPECT_EQ(c.probe(0x0000), 0u);
    EXPECT_NE(c.probe(0x0080), 0u);
}

TEST(Cache, RandomReplacementIsDeterministicAndValid)
{
    CacheParams p = smallParams();
    p.assoc = 4;
    p.sizeBytes = 4 * 128;
    p.policy = PolicyKind::Random;
    auto run = [&] {
        SectoredCache c(p);
        std::vector<Addr> evicted;
        for (int i = 0; i < 64; ++i) {
            c.access(static_cast<Addr>(i) * 128, 32, true);
            auto wb = c.takeInsertWriteback();
            if (wb.valid)
                evicted.push_back(wb.blockAddr);
        }
        return evicted;
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a, b) << "random replacement must be reproducible";
    EXPECT_GE(a.size(), 50u) << "a 4-line cache must evict constantly";
}

TEST(Cache, RandomStreamIsPerCacheSeeded)
{
    // Two caches with different policySeed values must draw different
    // eviction sequences, and a cache's stream must not be perturbed
    // by activity in another instance (no global RNG state).
    CacheParams p = smallParams();
    p.assoc = 4;
    p.sizeBytes = 4 * 128;
    p.policy = PolicyKind::Random;

    auto evictions = [](SectoredCache &c) {
        std::vector<Addr> out;
        for (int i = 0; i < 64; ++i) {
            c.access(static_cast<Addr>(i) * 128, 32, true);
            auto wb = c.takeInsertWriteback();
            if (wb.valid)
                out.push_back(wb.blockAddr);
        }
        return out;
    };

    SectoredCache alone(p);
    auto baseline = evictions(alone);

    // Interleave two instances; each must reproduce its solo sequence.
    SectoredCache a(p);
    CacheParams q = p;
    q.policySeed = 0x12345678ull;
    SectoredCache b(q);
    std::vector<Addr> ev_a;
    std::vector<Addr> ev_b;
    for (int i = 0; i < 64; ++i) {
        a.access(static_cast<Addr>(i) * 128, 32, true);
        auto wa = a.takeInsertWriteback();
        if (wa.valid)
            ev_a.push_back(wa.blockAddr);
        b.access(static_cast<Addr>(i) * 128, 32, true);
        auto wb = b.takeInsertWriteback();
        if (wb.valid)
            ev_b.push_back(wb.blockAddr);
    }
    EXPECT_EQ(ev_a, baseline)
        << "interleaved instance perturbed the stream: global state?";
    EXPECT_NE(ev_b, baseline) << "policySeed must select the stream";
}
