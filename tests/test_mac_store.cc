/**
 * @file
 * MAC-store tests.
 */

#include <gtest/gtest.h>

#include "meta/mac_store.hh"

using namespace shmgpu;
using namespace shmgpu::meta;

namespace
{

class MacStoreTest : public ::testing::Test
{
  protected:
    MacStoreTest() : layout(makeParams()), store(layout) {}

    static LayoutParams
    makeParams()
    {
        LayoutParams p;
        p.dataBytes = 1 << 20;
        return p;
    }

    MetadataLayout layout;
    MacStore store;
};

} // namespace

TEST_F(MacStoreTest, UnsetMacsAreEmpty)
{
    EXPECT_FALSE(store.blockMac(0).has_value());
    EXPECT_FALSE(store.chunkMac(0).has_value());
}

TEST_F(MacStoreTest, BlockMacRoundTrip)
{
    store.setBlockMac(0x100, 0xABCD);
    // Any address within the block resolves to the same MAC.
    EXPECT_EQ(store.blockMac(0x17F), 0xABCD);
    EXPECT_FALSE(store.blockMac(0x200).has_value());
    EXPECT_EQ(store.blockMacsStored(), 1u);
}

TEST_F(MacStoreTest, ChunkMacRoundTrip)
{
    store.setChunkMac(0x1000, 0x1234);
    EXPECT_EQ(store.chunkMac(0x1FFF), 0x1234);
    EXPECT_FALSE(store.chunkMac(0x2000).has_value());
}

TEST_F(MacStoreTest, CorruptionFlipsBits)
{
    store.setBlockMac(0, 0xFF);
    store.corruptBlockMac(0, 0x0F);
    EXPECT_EQ(store.blockMac(0), 0xF0);

    store.setChunkMac(0, 0xFF);
    store.corruptChunkMac(0, 0xFF);
    EXPECT_EQ(store.chunkMac(0), 0x00);
}

TEST_F(MacStoreTest, CorruptingUnsetMacPanics)
{
    EXPECT_DEATH(store.corruptBlockMac(0, 1), "never stored");
    EXPECT_DEATH(store.corruptChunkMac(0, 1), "never stored");
}
