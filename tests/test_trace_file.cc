/**
 * @file
 * Trace record/replay tests: file round-trip, replay fidelity, and
 * trace-driven simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "gpu/simulator.hh"
#include "schemes/schemes.hh"
#include "workload/trace_file.hh"

using namespace shmgpu;
using namespace shmgpu::workload;

namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "shmgpu_trace_test.trace";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

} // namespace

TEST_F(TraceFileTest, GenerateCoversAllKernels)
{
    WorkloadSpec w = makeMultiKernelMicro();
    Trace trace = generateTrace(w, 4);
    EXPECT_EQ(trace.numSms, 4u);
    ASSERT_EQ(trace.kernels.size(), 3u);
    // Kernels 0 and 2 carry the host copy that refreshes 'in'.
    EXPECT_EQ(trace.kernels[0].copies.size(), 1u);
    EXPECT_EQ(trace.kernels[1].copies.size(), 0u);
    EXPECT_EQ(trace.kernels[2].copies.size(), 1u);
    // 1024 iterations x 2 streams x 4 SMs per kernel.
    EXPECT_EQ(trace.kernels[0].records.size(), 1024u * 2 * 4);
}

TEST_F(TraceFileTest, FileRoundTripIsLossless)
{
    WorkloadSpec w = makeMixedMicro();
    Trace original = generateTrace(w, 3);
    writeTrace(original, path);
    Trace loaded = readTrace(path);

    ASSERT_EQ(loaded.numSms, original.numSms);
    ASSERT_EQ(loaded.kernels.size(), original.kernels.size());
    for (std::size_t k = 0; k < original.kernels.size(); ++k) {
        const auto &a = original.kernels[k];
        const auto &b = loaded.kernels[k];
        ASSERT_EQ(a.records.size(), b.records.size());
        ASSERT_EQ(a.copies.size(), b.copies.size());
        for (std::size_t i = 0; i < a.records.size(); ++i) {
            EXPECT_EQ(a.records[i].op.addr, b.records[i].op.addr);
            EXPECT_EQ(a.records[i].op.type, b.records[i].op.type);
            EXPECT_EQ(a.records[i].op.space, b.records[i].op.space);
            EXPECT_EQ(a.records[i].op.computeInstrs,
                      b.records[i].op.computeInstrs);
            EXPECT_EQ(a.records[i].op.bytes, b.records[i].op.bytes);
            EXPECT_EQ(a.records[i].sm, b.records[i].sm);
        }
        for (std::size_t i = 0; i < a.copies.size(); ++i) {
            EXPECT_EQ(a.copies[i].base, b.copies[i].base);
            EXPECT_EQ(a.copies[i].bytes, b.copies[i].bytes);
        }
    }
}

TEST_F(TraceFileTest, ReplayReturnsRecordedPerSmStreams)
{
    WorkloadSpec w = makeStreamingMicro(1 << 20, 64);
    Trace trace = generateTrace(w, 2);
    TraceReplay replay(trace, 0);

    // Drain SM 1 first, then SM 0: per-SM streams are independent.
    std::vector<Addr> sm1;
    TraceOp op;
    while (replay.next(1, op))
        sm1.push_back(op.addr);
    EXPECT_FALSE(replay.done());
    std::vector<Addr> sm0;
    while (replay.next(0, op))
        sm0.push_back(op.addr);
    EXPECT_TRUE(replay.done());

    // Cross-check against the recorded file order.
    std::vector<Addr> expect0, expect1;
    for (const auto &rec : trace.kernels[0].records)
        (rec.sm == 0 ? expect0 : expect1).push_back(rec.op.addr);
    EXPECT_EQ(sm0, expect0);
    EXPECT_EQ(sm1, expect1);
}

TEST_F(TraceFileTest, TraceDrivenSimulationMatchesTraceVolume)
{
    WorkloadSpec w = makeMixedMicro();
    Trace trace = generateTrace(w, 30);
    writeTrace(trace, path);
    Trace loaded = readTrace(path);

    gpu::GpuParams gp;
    gp.maxCyclesPerKernel = 60000;
    gpu::GpuSimulator sim(gp,
                          schemes::makeMeeParams(schemes::Scheme::Shm),
                          loaded);
    gpu::RunMetrics m = sim.run();
    EXPECT_GT(m.cycles, 0u);
    // Every recorded op retires one memory instruction plus its
    // compute instructions.
    std::uint64_t expected = 0;
    for (const auto &k : loaded.kernels)
        for (const auto &rec : k.records)
            expected += 1 + rec.op.computeInstrs;
    EXPECT_EQ(m.instructions, expected);
    EXPECT_GT(m.sharedCtrReads, 0.0) << "host copies were replayed";
}

TEST_F(TraceFileTest, TraceDrivenRunIsDeterministic)
{
    WorkloadSpec w = makeRandomMicro(1 << 20, 512);
    Trace trace = generateTrace(w, 30);

    gpu::GpuParams gp;
    gp.maxCyclesPerKernel = 60000;
    auto run = [&] {
        gpu::GpuSimulator sim(
            gp, schemes::makeMeeParams(schemes::Scheme::Pssm), trace);
        return sim.run();
    };
    gpu::RunMetrics a = run();
    gpu::RunMetrics b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.metadataBytes(), b.metadataBytes());
}

TEST_F(TraceFileTest, SmCountMismatchIsFatal)
{
    WorkloadSpec w = makeMixedMicro();
    Trace trace = generateTrace(w, 4);
    gpu::GpuParams gp; // 30 SMs
    EXPECT_DEATH(
        {
            gpu::GpuSimulator sim(
                gp, schemes::makeMeeParams(schemes::Scheme::Shm), trace);
        },
        "recorded for 4 SMs");
}

TEST_F(TraceFileTest, CorruptFileIsFatal)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPE", f);
    std::fclose(f);
    EXPECT_DEATH(readTrace(path), "not a shmgpu trace");
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_DEATH(readTrace("/nonexistent/foo.trace"), "cannot open");
}
