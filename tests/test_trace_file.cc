/**
 * @file
 * Trace record/replay tests: file round-trip, replay fidelity,
 * trace-driven simulation, and reader robustness (randomized
 * round-trips; corrupt and truncated files must produce an error
 * message, never a crash or a runaway allocation).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/rng.hh"
#include "gpu/simulator.hh"
#include "schemes/schemes.hh"
#include "workload/trace_file.hh"

using namespace shmgpu;
using namespace shmgpu::workload;

namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test *and* process: ctest -j runs each test of
        // this fixture in its own concurrent process, so a fixed name
        // lets parallel tests clobber each other's file.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = ::testing::TempDir() + "shmgpu_trace_" +
               info->name() + "_" + std::to_string(::getpid()) +
               ".trace";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

} // namespace

TEST_F(TraceFileTest, GenerateCoversAllKernels)
{
    WorkloadSpec w = makeMultiKernelMicro();
    Trace trace = generateTrace(w, 4);
    EXPECT_EQ(trace.numSms, 4u);
    ASSERT_EQ(trace.kernels.size(), 3u);
    // Kernels 0 and 2 carry the host copy that refreshes 'in'.
    EXPECT_EQ(trace.kernels[0].copies.size(), 1u);
    EXPECT_EQ(trace.kernels[1].copies.size(), 0u);
    EXPECT_EQ(trace.kernels[2].copies.size(), 1u);
    // 1024 iterations x 2 streams x 4 SMs per kernel.
    EXPECT_EQ(trace.kernels[0].records.size(), 1024u * 2 * 4);
}

TEST_F(TraceFileTest, FileRoundTripIsLossless)
{
    WorkloadSpec w = makeMixedMicro();
    Trace original = generateTrace(w, 3);
    writeTrace(original, path);
    Trace loaded = readTrace(path);

    ASSERT_EQ(loaded.numSms, original.numSms);
    ASSERT_EQ(loaded.kernels.size(), original.kernels.size());
    for (std::size_t k = 0; k < original.kernels.size(); ++k) {
        const auto &a = original.kernels[k];
        const auto &b = loaded.kernels[k];
        ASSERT_EQ(a.records.size(), b.records.size());
        ASSERT_EQ(a.copies.size(), b.copies.size());
        for (std::size_t i = 0; i < a.records.size(); ++i) {
            EXPECT_EQ(a.records[i].op.addr, b.records[i].op.addr);
            EXPECT_EQ(a.records[i].op.type, b.records[i].op.type);
            EXPECT_EQ(a.records[i].op.space, b.records[i].op.space);
            EXPECT_EQ(a.records[i].op.computeInstrs,
                      b.records[i].op.computeInstrs);
            EXPECT_EQ(a.records[i].op.bytes, b.records[i].op.bytes);
            EXPECT_EQ(a.records[i].sm, b.records[i].sm);
        }
        for (std::size_t i = 0; i < a.copies.size(); ++i) {
            EXPECT_EQ(a.copies[i].base, b.copies[i].base);
            EXPECT_EQ(a.copies[i].bytes, b.copies[i].bytes);
        }
    }
}

TEST_F(TraceFileTest, ReplayReturnsRecordedPerSmStreams)
{
    WorkloadSpec w = makeStreamingMicro(1 << 20, 64);
    Trace trace = generateTrace(w, 2);
    TraceReplay replay(trace, 0);

    // Drain SM 1 first, then SM 0: per-SM streams are independent.
    std::vector<Addr> sm1;
    TraceOp op;
    while (replay.next(1, op))
        sm1.push_back(op.addr);
    EXPECT_FALSE(replay.done());
    std::vector<Addr> sm0;
    while (replay.next(0, op))
        sm0.push_back(op.addr);
    EXPECT_TRUE(replay.done());

    // Cross-check against the recorded file order.
    std::vector<Addr> expect0, expect1;
    for (const auto &rec : trace.kernels[0].records)
        (rec.sm == 0 ? expect0 : expect1).push_back(rec.op.addr);
    EXPECT_EQ(sm0, expect0);
    EXPECT_EQ(sm1, expect1);
}

TEST_F(TraceFileTest, TraceDrivenSimulationMatchesTraceVolume)
{
    WorkloadSpec w = makeMixedMicro();
    Trace trace = generateTrace(w, 30);
    writeTrace(trace, path);
    Trace loaded = readTrace(path);

    gpu::GpuParams gp;
    gp.maxCyclesPerKernel = 60000;
    gpu::GpuSimulator sim(gp,
                          schemes::makeMeeParams(schemes::Scheme::Shm),
                          loaded);
    gpu::RunMetrics m = sim.run();
    EXPECT_GT(m.cycles, 0u);
    // Every recorded op retires one memory instruction plus its
    // compute instructions.
    std::uint64_t expected = 0;
    for (const auto &k : loaded.kernels)
        for (const auto &rec : k.records)
            expected += 1 + rec.op.computeInstrs;
    EXPECT_EQ(m.instructions, expected);
    EXPECT_GT(m.sharedCtrReads, 0.0) << "host copies were replayed";
}

TEST_F(TraceFileTest, TraceDrivenRunIsDeterministic)
{
    WorkloadSpec w = makeRandomMicro(1 << 20, 512);
    Trace trace = generateTrace(w, 30);

    gpu::GpuParams gp;
    gp.maxCyclesPerKernel = 60000;
    auto run = [&] {
        gpu::GpuSimulator sim(
            gp, schemes::makeMeeParams(schemes::Scheme::Pssm), trace);
        return sim.run();
    };
    gpu::RunMetrics a = run();
    gpu::RunMetrics b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.metadataBytes(), b.metadataBytes());
}

TEST_F(TraceFileTest, SmCountMismatchIsFatal)
{
    WorkloadSpec w = makeMixedMicro();
    Trace trace = generateTrace(w, 4);
    gpu::GpuParams gp; // 30 SMs
    EXPECT_DEATH(
        {
            gpu::GpuSimulator sim(
                gp, schemes::makeMeeParams(schemes::Scheme::Shm), trace);
        },
        "recorded for 4 SMs");
}

TEST_F(TraceFileTest, CorruptFileIsFatal)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPE", f);
    std::fclose(f);
    EXPECT_DEATH(readTrace(path), "not a shmgpu trace");
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_DEATH(readTrace("/nonexistent/foo.trace"), "cannot open");
}

namespace
{

/** A structurally valid random trace (op fields within range). */
Trace
randomTrace(Rng &rng)
{
    Trace trace;
    trace.numSms = 1 + static_cast<std::uint32_t>(rng.below(8));
    std::size_t kernels = 1 + rng.below(4);
    for (std::size_t k = 0; k < kernels; ++k) {
        TraceKernel kernel;
        std::size_t copies = rng.below(4);
        for (std::size_t c = 0; c < copies; ++c)
            kernel.copies.push_back({rng.below(1 << 20) * 128,
                                     (1 + rng.below(64)) * 128,
                                     rng.chance(0.5)});
        std::size_t records = rng.below(200);
        for (std::size_t r = 0; r < records; ++r) {
            TraceRecord rec;
            rec.op.addr = rng.below(1 << 24) * 32;
            rec.op.bytes = 32u << rng.below(3);
            rec.op.computeInstrs =
                static_cast<std::uint8_t>(rng.below(8));
            rec.op.type = rng.chance(0.3) ? mem::AccessType::Write
                                          : mem::AccessType::Read;
            rec.op.space = static_cast<MemSpace>(rng.below(5));
            rec.sm = static_cast<SmId>(rng.below(trace.numSms));
            kernel.records.push_back(rec);
        }
        trace.kernels.push_back(std::move(kernel));
    }
    return trace;
}

bool
tracesEqual(const Trace &a, const Trace &b)
{
    if (a.numSms != b.numSms || a.kernels.size() != b.kernels.size())
        return false;
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        const auto &ka = a.kernels[k];
        const auto &kb = b.kernels[k];
        if (ka.copies.size() != kb.copies.size() ||
            ka.records.size() != kb.records.size())
            return false;
        for (std::size_t c = 0; c < ka.copies.size(); ++c)
            if (ka.copies[c].base != kb.copies[c].base ||
                ka.copies[c].bytes != kb.copies[c].bytes ||
                ka.copies[c].declaredReadOnly !=
                    kb.copies[c].declaredReadOnly)
                return false;
        for (std::size_t r = 0; r < ka.records.size(); ++r) {
            const auto &ra = ka.records[r];
            const auto &rb = kb.records[r];
            if (ra.sm != rb.sm || ra.op.addr != rb.op.addr ||
                ra.op.type != rb.op.type ||
                ra.op.space != rb.op.space ||
                ra.op.computeInstrs != rb.op.computeInstrs ||
                ra.op.bytes != rb.op.bytes)
                return false;
        }
    }
    return true;
}

std::vector<char>
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST_F(TraceFileTest, RandomizedWriteReadWriteRoundTrip)
{
    // write -> read -> write must be a fixed point: the reread trace
    // equals the original and the two files are byte-identical.
    std::string path2 = path + ".2";
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        Rng rng(seed);
        Trace original = randomTrace(rng);
        writeTrace(original, path);

        Trace loaded;
        std::string error;
        ASSERT_TRUE(tryReadTrace(path, loaded, error)) << error;
        EXPECT_TRUE(tracesEqual(original, loaded)) << "seed " << seed;

        writeTrace(loaded, path2);
        EXPECT_EQ(fileBytes(path), fileBytes(path2)) << "seed " << seed;
    }
    std::remove(path2.c_str());
}

TEST_F(TraceFileTest, TryReadReportsMissingFile)
{
    Trace out;
    std::string error;
    EXPECT_FALSE(tryReadTrace("/nonexistent/foo.trace", out, error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(TraceFileTest, TruncationAtEveryPrefixFailsGracefully)
{
    Rng rng(7);
    Trace original = randomTrace(rng);
    writeTrace(original, path);
    std::vector<char> intact = fileBytes(path);
    ASSERT_GT(intact.size(), 32u);

    // Every strict prefix must yield an error, never a crash. (Step
    // through offsets to keep the loop fast on big traces.)
    for (std::size_t len = 0; len < intact.size();
         len += 1 + len / 7) {
        std::vector<char> cut(intact.begin(),
                              intact.begin() +
                                  static_cast<std::ptrdiff_t>(len));
        writeFileBytes(path, cut);
        Trace out;
        std::string error;
        EXPECT_FALSE(tryReadTrace(path, out, error)) << "len " << len;
        EXPECT_FALSE(error.empty()) << "len " << len;
    }
}

TEST_F(TraceFileTest, CorruptCountFieldsFailWithoutHugeAllocation)
{
    Rng rng(11);
    Trace original = randomTrace(rng);
    writeTrace(original, path);
    std::vector<char> intact = fileBytes(path);

    // The op count of kernel 0 sits after the header and its copies.
    std::size_t count_off = 4 + 4 + 4 + 4 + 4 +
                            original.kernels[0].copies.size() * 17;
    ASSERT_LT(count_off + 8, intact.size());
    std::vector<char> evil = intact;
    for (int i = 0; i < 8; ++i)
        evil[count_off + i] = static_cast<char>(0xff);
    writeFileBytes(path, evil);

    Trace out;
    std::string error;
    // A naive reader would reserve() 2^64 records here; the bounded
    // reader must fail fast with a corruption message instead.
    EXPECT_FALSE(tryReadTrace(path, out, error));
    EXPECT_NE(error.find("exceeds the file size"), std::string::npos);
}

TEST_F(TraceFileTest, RandomByteFlipsNeverCrashTheReader)
{
    Rng rng(23);
    Trace original = randomTrace(rng);
    writeTrace(original, path);
    std::vector<char> intact = fileBytes(path);

    for (int trial = 0; trial < 200; ++trial) {
        std::vector<char> fuzzed = intact;
        // Flip 1-4 random bytes anywhere in the file.
        int flips = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < flips; ++i)
            fuzzed[rng.below(fuzzed.size())] ^=
                static_cast<char>(1 + rng.below(255));
        writeFileBytes(path, fuzzed);
        Trace out;
        std::string error;
        // Either a clean parse (the flip hit a don't-care byte or was
        // masked) or a clean error; both must leave the process alive.
        if (!tryReadTrace(path, out, error)) {
            EXPECT_FALSE(error.empty()) << "trial " << trial;
        }
    }
}

TEST_F(TraceFileTest, OutOfRangeSmAndSpaceAreRejected)
{
    Trace trace;
    trace.numSms = 2;
    TraceKernel kernel;
    TraceRecord rec;
    rec.op.addr = 128;
    rec.op.bytes = 32;
    rec.sm = 1;
    kernel.records.push_back(rec);
    trace.kernels.push_back(kernel);
    writeTrace(trace, path);
    std::vector<char> intact = fileBytes(path);

    // Record layout after the 16 B header + 8 B op count:
    // u64 addr, u8 sm, u8 compute, u8 type, u8 space, u32 bytes.
    std::size_t rec_off = 4 + 4 + 4 + 4 + 4 + 8;
    {
        std::vector<char> evil = intact;
        evil[rec_off + 8] = 9; // SM 9 of 2
        writeFileBytes(path, evil);
        Trace out;
        std::string error;
        EXPECT_FALSE(tryReadTrace(path, out, error));
        EXPECT_NE(error.find("names SM 9"), std::string::npos);
    }
    {
        std::vector<char> evil = intact;
        evil[rec_off + 11] = 7; // memory space 7 (max is 4)
        writeFileBytes(path, evil);
        Trace out;
        std::string error;
        EXPECT_FALSE(tryReadTrace(path, out, error));
        EXPECT_NE(error.find("invalid memory space"),
                  std::string::npos);
    }
}

TEST_F(TraceFileTest, TrailingGarbageIsRejected)
{
    Rng rng(3);
    Trace original = randomTrace(rng);
    writeTrace(original, path);
    std::vector<char> bytes = fileBytes(path);
    bytes.push_back('x');
    writeFileBytes(path, bytes);

    Trace out;
    std::string error;
    EXPECT_FALSE(tryReadTrace(path, out, error));
    EXPECT_NE(error.find("trailing garbage"), std::string::npos);
}
