/**
 * @file
 * Structured event tracer tests: overflow accounting, class filtering,
 * deterministic export ordering (including across shard counts), and
 * the Chrome trace_event JSON schema.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hh"
#include "common/trace.hh"
#include "gpu/presets.hh"
#include "gpu/simulator.hh"
#include "schemes/schemes.hh"
#include "workload/benchmarks.hh"

using namespace shmgpu;
using namespace shmgpu::trace;

TEST(TraceClassMask, ParsesNamesAndAll)
{
    EXPECT_EQ(parseClassMask("all"), allClassesMask);
    EXPECT_EQ(parseClassMask("sm"), classBit(EventClass::Sm));
    EXPECT_EQ(parseClassMask("sm,l2"),
              classBit(EventClass::Sm) | classBit(EventClass::L2));
    EXPECT_EQ(parseClassMask(" txn , detect "),
              classBit(EventClass::Txn) | classBit(EventClass::Detect));
    EXPECT_EQ(parseClassMask("mee,mee"), classBit(EventClass::Mee));
}

TEST(TraceClassMask, RejectsUnknownAndEmpty)
{
    EXPECT_DEATH(parseClassMask("bogus"), "unknown trace event class");
    EXPECT_DEATH(parseClassMask(""), "selects no event classes");
    EXPECT_DEATH(parseClassMask(","), "selects no event classes");
}

TEST(TraceClassMask, EveryKindHasAClassAndName)
{
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::NumKinds);
         ++k) {
        EventKind kind = static_cast<EventKind>(k);
        EXPECT_NE(kindName(kind), nullptr);
        EXPECT_LT(static_cast<unsigned>(classOf(kind)),
                  static_cast<unsigned>(EventClass::NumClasses));
        EXPECT_NE(className(classOf(kind)), nullptr);
    }
}

TEST(Tracer, ClassFilterSkipsRecording)
{
    TraceParams params;
    params.classMask = classBit(EventClass::Sm);
    Tracer tracer(1, params);
    tracer.record(0, EventKind::L2Hit, 10, 0, 0x100);
    tracer.record(0, EventKind::CtrFetch, 11, 0, 0x200);
    tracer.record(0, EventKind::SmIssue, 12, 0, 0x300);
    EXPECT_EQ(tracer.totalRecorded(), 1u);
    auto events = tracer.collectSorted();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, EventKind::SmIssue);
}

TEST(Tracer, SharedLaneOverflowDropsAndCounts)
{
    TraceParams params;
    params.ringCapacity = 8;
    Tracer tracer(1, params);
    tracer.setLaneShared(0, true);
    const std::uint64_t emitted = 100;
    for (std::uint64_t i = 0; i < emitted; ++i)
        tracer.record(0, EventKind::TxnEnqueue, i, 0, i);
    EXPECT_GT(tracer.totalDropped(), 0u);
    EXPECT_EQ(tracer.droppedOn(0), tracer.totalDropped());
    // Conservation: every emission was either stored or counted.
    EXPECT_EQ(tracer.totalRecorded() + tracer.totalDropped(), emitted);
}

TEST(Tracer, NonSharedLaneDrainsInlineAndNeverDrops)
{
    TraceParams params;
    params.ringCapacity = 8;
    Tracer tracer(1, params);
    const std::uint64_t emitted = 1000;
    for (std::uint64_t i = 0; i < emitted; ++i)
        tracer.record(0, EventKind::SmIssue, i, 0, i);
    EXPECT_EQ(tracer.totalDropped(), 0u);
    EXPECT_EQ(tracer.totalRecorded(), emitted);
}

TEST(Tracer, ExportSortsByCycleWithLaneMajorTies)
{
    TraceParams params;
    Tracer tracer(2, params);
    // Interleave cycles across lanes, with a tie at cycle 5.
    tracer.record(0, EventKind::SmIssue, 5, 0, 1);
    tracer.record(0, EventKind::SmIssue, 9, 0, 2);
    tracer.record(1, EventKind::TxnDequeue, 5, 1, 3);
    tracer.record(1, EventKind::TxnDequeue, 2, 1, 4);
    auto events = tracer.collectSorted();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].payload, 4u); // cycle 2
    EXPECT_EQ(events[1].payload, 1u); // cycle-5 tie: lane 0 first
    EXPECT_EQ(events[2].payload, 3u);
    EXPECT_EQ(events[3].payload, 2u); // cycle 9
}

TEST(Tracer, ChromeJsonIsValidAndCarriesSchema)
{
    TraceParams params;
    Tracer tracer(2, params);
    tracer.setLaneName(0, "partition 0");
    tracer.setLaneName(1, "sm scheduler");
    tracer.record(1, EventKind::KernelBegin, 0, 0, 0);
    tracer.record(0, EventKind::L2Miss, 17, 0, 0xdeadbeefull);
    tracer.record(1, EventKind::KernelEnd, 42, 0, 0);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    json::Value doc = json::Value::parse(os.str());

    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.contains("traceEvents"));
    const json::Value &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // 1 process_name + 2 thread_name metadata records + 3 instants.
    ASSERT_EQ(events.size(), 6u);

    std::size_t meta = 0, instants = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value &e = events.at(i);
        const std::string &ph = e.at("ph").asString();
        if (ph == "M") {
            ++meta;
            continue;
        }
        ASSERT_EQ(ph, "i");
        ++instants;
        EXPECT_EQ(e.at("s").asString(), "t");
        EXPECT_EQ(e.at("pid").asNumber(), 1.0);
        EXPECT_TRUE(e.contains("name"));
        EXPECT_TRUE(e.contains("cat"));
        EXPECT_TRUE(e.contains("ts"));
        EXPECT_TRUE(e.at("args").contains("payload"));
        EXPECT_TRUE(e.at("args").contains("component"));
    }
    EXPECT_EQ(meta, 3u);
    EXPECT_EQ(instants, 3u);

    const json::Value &other = doc.at("otherData");
    EXPECT_EQ(other.at("time_unit").asString(), "cycles");
    EXPECT_EQ(other.at("dropped_events").asString(), "0");

    // Payloads export as hex strings: u64 values would lose precision
    // as JSON doubles.
    bool found_payload = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value &e = events.at(i);
        if (e.at("ph").asString() == "i" &&
            e.at("name").asString() == "L2Miss") {
            EXPECT_EQ(e.at("args").at("payload").asString(),
                      "0xdeadbeef");
            found_payload = true;
        }
    }
    EXPECT_TRUE(found_payload);
}

TEST(Tracer, TextDumpIsDeterministic)
{
    auto dump = [] {
        TraceParams params;
        Tracer tracer(2, params);
        tracer.record(0, EventKind::L2Hit, 3, 0, 0x40);
        tracer.record(1, EventKind::SmIssue, 3, 2, 0x80);
        tracer.record(0, EventKind::CtrFetch, 7, 0, 0xc0);
        std::ostringstream os;
        tracer.writeText(os);
        return os.str();
    };
    std::string a = dump(), b = dump();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("cycle=3 class=l2 kind=L2Hit"), std::string::npos);
    EXPECT_NE(a.find("# events=3 dropped=0"), std::string::npos);
}

namespace
{

/**
 * Run one simulation with a tracer attached and return the text dump,
 * the deterministic A/B format.
 */
std::string
tracedRun(const workload::WorkloadSpec &w, std::uint32_t shards,
          std::uint32_t class_mask)
{
    gpu::GpuParams gp = gpu::testConfig();
    gp.shards = shards;
    TraceParams params;
    params.classMask = class_mask;
    Tracer tracer(gp.numPartitions + 1, params);
    gpu::GpuSimulator sim(
        gp, schemes::makeMeeParams(schemes::Scheme::Shm), w);
    sim.attachTracer(&tracer);
    sim.run();
    std::ostringstream os;
    tracer.writeText(os);
    return os.str();
}

} // namespace

TEST(TracerSimulation, ExportIsIdenticalAcrossShardCounts)
{
    // The Engine class (calendar skips, epoch barriers) describes the
    // engine itself and legitimately differs between shard counts;
    // every architectural class must match bit for bit.
    std::uint32_t mask = allClassesMask & ~classBit(EventClass::Engine);
    workload::WorkloadSpec w = workload::makeMixedMicro();
    std::string serial = tracedRun(w, 1, mask);
    std::string sharded = tracedRun(w, 2, mask);
    EXPECT_GT(serial.size(), 100u) << "trace suspiciously empty";
    EXPECT_EQ(serial, sharded);
}

TEST(TracerSimulation, RepeatRunsAreBitIdentical)
{
    workload::WorkloadSpec w = workload::makeStreamingMicro(1 << 18, 256);
    std::string a = tracedRun(w, 1, allClassesMask);
    std::string b = tracedRun(w, 1, allClassesMask);
    EXPECT_EQ(a, b);
}

TEST(TracerSimulation, EmitsEveryArchitecturalClass)
{
    workload::WorkloadSpec w = workload::makeMixedMicro();
    std::string dump = tracedRun(w, 1, allClassesMask);
    EXPECT_NE(dump.find("class=sm"), std::string::npos);
    EXPECT_NE(dump.find("class=txn"), std::string::npos);
    EXPECT_NE(dump.find("class=l2"), std::string::npos);
    EXPECT_NE(dump.find("class=mee"), std::string::npos);
    EXPECT_NE(dump.find("class=detect"), std::string::npos);
    EXPECT_NE(dump.find("kind=KernelBegin"), std::string::npos);
    EXPECT_NE(dump.find("kind=KernelEnd"), std::string::npos);
}

TEST(TracerSimulation, DetachedTracerChangesNothing)
{
    workload::WorkloadSpec w = workload::makeMixedMicro();
    gpu::GpuParams gp = gpu::testConfig();
    auto run = [&](bool traced) {
        gpu::GpuSimulator sim(
            gp, schemes::makeMeeParams(schemes::Scheme::Pssm), w);
        TraceParams params;
        Tracer tracer(gp.numPartitions + 1, params);
        if (traced)
            sim.attachTracer(&tracer);
        return sim.run();
    };
    gpu::RunMetrics off = run(false);
    gpu::RunMetrics on = run(true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.metadataBytes(), on.metadataBytes());
}
