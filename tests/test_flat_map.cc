/**
 * @file
 * FlatMap unit and property tests: basic map semantics, deterministic
 * iteration, tombstone reuse under erase/insert churn, and a long
 * randomized differential run against std::unordered_map.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"

using namespace shmgpu;

TEST(FlatMap, InsertFindErase)
{
    FlatMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.erase(42));

    auto [val, inserted] = map.emplace(42, 7);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*val, 7);
    EXPECT_EQ(map.size(), 1u);

    auto [again, inserted2] = map.emplace(42, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(*again, 7) << "emplace on a present key must not overwrite";

    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7);
    EXPECT_TRUE(map.contains(42));

    EXPECT_TRUE(map.erase(42));
    EXPECT_FALSE(map.contains(42));
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap, SubscriptDefaultConstructs)
{
    FlatMap<std::uint32_t> map;
    map[5] |= 0x10; // the pending-write-mask idiom
    map[5] |= 0x01;
    EXPECT_EQ(map[5], 0x11u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, RehashPreservesEntries)
{
    FlatMap<std::uint64_t> map;
    constexpr std::uint64_t n = 10000;
    for (std::uint64_t k = 0; k < n; ++k)
        map.emplace(k * 128, k);
    EXPECT_EQ(map.size(), n);
    for (std::uint64_t k = 0; k < n; ++k) {
        ASSERT_NE(map.find(k * 128), nullptr) << "key " << k * 128;
        EXPECT_EQ(*map.find(k * 128), k);
    }
}

TEST(FlatMap, IterationIsDeterministic)
{
    // Two maps fed the same operation sequence iterate identically —
    // the property the stats/JSON reproducibility contract needs.
    FlatMap<int> a;
    FlatMap<int> b;
    Rng rng_a(123);
    Rng rng_b(123);
    auto feed = [](FlatMap<int> &map, Rng &rng) {
        for (int i = 0; i < 5000; ++i) {
            std::uint64_t key = rng.below(512) * 64;
            if (rng.below(3) == 0)
                map.erase(key);
            else
                map.emplace(key, static_cast<int>(key));
        }
    };
    feed(a, rng_a);
    feed(b, rng_b);

    std::vector<std::uint64_t> order_a;
    std::vector<std::uint64_t> order_b;
    for (const auto &[key, value] : a)
        order_a.push_back(key);
    for (const auto &[key, value] : b)
        order_b.push_back(key);
    EXPECT_EQ(order_a.size(), a.size());
    EXPECT_EQ(order_a, order_b);
}

TEST(FlatMap, TombstoneReuseKeepsCapacityBounded)
{
    // MSHR churn: never more than `live` entries alive, arbitrary
    // insert/erase traffic. Tombstone reuse must keep the table at
    // the reserved size instead of growing without bound.
    constexpr std::size_t live = 64;
    FlatMap<std::uint32_t> map;
    map.reserve(live);
    std::size_t reserved = map.capacity();
    ASSERT_GT(reserved, 0u);

    std::uint64_t next_key = 0;
    std::vector<std::uint64_t> alive;
    Rng rng(7);
    auto churn = [&](int ops) {
        for (int i = 0; i < ops; ++i) {
            if (alive.size() < live && (alive.empty() || rng.below(2))) {
                map.emplace(next_key, 1u);
                alive.push_back(next_key);
                next_key += 128;
            } else {
                std::size_t pick = rng.below(alive.size());
                EXPECT_TRUE(map.erase(alive[pick]));
                alive[pick] = alive.back();
                alive.pop_back();
            }
        }
    };

    // The occupancy heuristic may double once while settling; after
    // that, churn must be absorbed by tombstone reuse and in-place
    // rehashes, never further growth.
    churn(100000);
    std::size_t settled = map.capacity();
    EXPECT_LE(settled, reserved * 4);
    churn(100000);
    EXPECT_EQ(map.size(), alive.size());
    EXPECT_EQ(map.capacity(), settled)
        << "erase/insert churn at bounded occupancy must not grow "
           "the table";
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.emplace(k, 1);
    std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(5), nullptr);
    map.emplace(5, 2);
    EXPECT_EQ(*map.find(5), 2);
}

TEST(FlatMap, FuzzAgainstUnorderedMap)
{
    // Long randomized differential run: FlatMap must agree with
    // std::unordered_map on every observable after every operation
    // batch, including adversarial keys (colliding low bits, 0,
    // all-ones).
    FlatMap<std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(0xF1A7F1A7);

    auto random_key = [&]() -> std::uint64_t {
        switch (rng.below(4)) {
        case 0:
            return rng.below(64) << 20; // identical low bits
        case 1:
            return rng.below(1024) * 128; // block-address shaped
        case 2:
            return rng.next(); // arbitrary
        default:
            return rng.below(2) ? 0 : ~std::uint64_t{0};
        }
    };

    for (int step = 0; step < 100000; ++step) {
        std::uint64_t key = random_key();
        switch (rng.below(4)) {
        case 0: { // emplace
            std::uint64_t value = rng.next();
            auto [ptr, inserted] = map.emplace(key, value);
            auto [it, ref_inserted] = ref.emplace(key, value);
            ASSERT_EQ(inserted, ref_inserted);
            ASSERT_EQ(*ptr, it->second);
            break;
        }
        case 1: { // operator[] |= write
            std::uint64_t bit = 1ull << rng.below(64);
            map[key] |= bit;
            ref[key] |= bit;
            break;
        }
        case 2: // erase
            ASSERT_EQ(map.erase(key), ref.erase(key) == 1);
            break;
        default: // find
            const std::uint64_t *found = map.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(found != nullptr, it != ref.end());
            if (found)
                ASSERT_EQ(*found, it->second);
            break;
        }
        ASSERT_EQ(map.size(), ref.size());
    }

    // Full-content comparison via iteration.
    std::size_t seen = 0;
    for (const auto &[key, value] : map) {
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(value, it->second);
        ++seen;
    }
    EXPECT_EQ(seen, ref.size());
}
