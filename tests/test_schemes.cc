/**
 * @file
 * Scheme-factory tests (Table VIII).
 */

#include <gtest/gtest.h>

#include "schemes/schemes.hh"

using namespace shmgpu;
using namespace shmgpu::schemes;

TEST(Schemes, NamesRoundTrip)
{
    for (Scheme s : allSchemes())
        EXPECT_EQ(schemeFromName(schemeName(s)), s);
    EXPECT_EQ(schemeFromName("Baseline"), Scheme::Baseline);
}

TEST(Schemes, UnknownNameIsFatal)
{
    EXPECT_DEATH(schemeFromName("SGX"), "unknown scheme");
}

TEST(Schemes, TableVIIIListsNineDesignsPlusAdaptive)
{
    // Table VIII's nine designs plus the SHM_adaptive meta-scheme.
    EXPECT_EQ(allSchemes().size(), 10u);
}

TEST(Schemes, BaselineDisablesSecurity)
{
    EXPECT_FALSE(makeMeeParams(Scheme::Baseline).secure);
    for (Scheme s : allSchemes())
        EXPECT_TRUE(makeMeeParams(s).secure) << schemeName(s);
}

TEST(Schemes, NaiveUsesPhysicalUnsectoredMetadata)
{
    auto p = makeMeeParams(Scheme::Naive);
    EXPECT_FALSE(p.localMetadataAddressing);
    EXPECT_FALSE(p.sectoredMetadata);
    EXPECT_FALSE(p.commonCounters);
    EXPECT_FALSE(p.readOnlyOpt);
    EXPECT_FALSE(p.dualGranularityMac);
}

TEST(Schemes, PssmUsesLocalSectoredMetadata)
{
    auto p = makeMeeParams(Scheme::Pssm);
    EXPECT_TRUE(p.localMetadataAddressing);
    EXPECT_TRUE(p.sectoredMetadata);
}

TEST(Schemes, ShmAddsBothOptimizations)
{
    auto p = makeMeeParams(Scheme::Shm);
    EXPECT_TRUE(p.readOnlyOpt);
    EXPECT_TRUE(p.dualGranularityMac);
    EXPECT_FALSE(p.victimL2);
}

TEST(Schemes, VariantsDifferAsDocumented)
{
    EXPECT_FALSE(makeMeeParams(Scheme::ShmReadOnly).dualGranularityMac);
    EXPECT_TRUE(makeMeeParams(Scheme::ShmCctr).commonCounters);
    EXPECT_TRUE(makeMeeParams(Scheme::ShmVL2).victimL2);
    EXPECT_TRUE(makeMeeParams(Scheme::CommonCtr).commonCounters);
    EXPECT_TRUE(makeMeeParams(Scheme::PssmCctr).commonCounters);
}

TEST(Schemes, UpperBoundUsesOracle)
{
    auto p = makeMeeParams(Scheme::ShmUpperBound);
    EXPECT_TRUE(p.oracleDetectors);
    EXPECT_EQ(p.streamDetector.trackers, 0u) << "unlimited MATs";
    EXPECT_GT(p.streamDetector.entries, 2048u);
    EXPECT_TRUE(needsProfilePass(Scheme::ShmUpperBound));
    EXPECT_FALSE(needsProfilePass(Scheme::Shm));
}

TEST(Schemes, AdaptiveBundlesItsPrerequisites)
{
    auto p = makeMeeParams(Scheme::ShmAdaptive);
    EXPECT_TRUE(p.adaptive);
    EXPECT_TRUE(p.readOnlyOpt);
    EXPECT_TRUE(p.dualGranularityMac);
    EXPECT_TRUE(p.commonCounters);
    EXPECT_TRUE(p.localMetadataAddressing);
    EXPECT_GT(p.adaptEpoch, 0u);
    EXPECT_FALSE(needsProfilePass(Scheme::ShmAdaptive));
    EXPECT_EQ(schemeFromName("SHM_adaptive"), Scheme::ShmAdaptive);
}

TEST(Schemes, TableVIMdcDefaults)
{
    auto p = makeMeeParams(Scheme::Pssm);
    for (const auto *cache :
         {&p.counterCache, &p.macCache, &p.bmtCache}) {
        EXPECT_EQ(cache->sizeBytes, 2048u);
        EXPECT_EQ(cache->blockBytes, 128u);
        EXPECT_EQ(cache->assoc, 4u);
        EXPECT_EQ(cache->mshrs, 256u);
        EXPECT_TRUE(cache->writeAllocate);
    }
    EXPECT_EQ(p.hashLatency, 40u);
}
