/**
 * @file
 * Deterministic PRNG tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace shmgpu;

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(77);
    constexpr int buckets = 8;
    constexpr int samples = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < samples; ++i)
        ++counts[rng.below(buckets)];
    for (int b = 0; b < buckets; ++b) {
        EXPECT_GT(counts[b], samples / buckets * 0.9);
        EXPECT_LT(counts[b], samples / buckets * 1.1);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}
