/**
 * @file
 * Counter-mode engine tests: involution, pad uniqueness across seed
 * components, and seed sensitivity.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/keygen.hh"

using namespace shmgpu;
using namespace shmgpu::crypto;

namespace
{

class CtrModeTest : public ::testing::Test
{
  protected:
    CtrModeTest() : engine(generateKeys(1234).encryptionKey) {}

    DataBlock
    randomBlock(Rng &rng)
    {
        DataBlock b;
        for (auto &byte : b)
            byte = static_cast<std::uint8_t>(rng.next());
        return b;
    }

    CtrModeEngine engine;
};

} // namespace

TEST_F(CtrModeTest, TransformIsInvolution)
{
    Rng rng(7);
    for (int trial = 0; trial < 16; ++trial) {
        DataBlock plain = randomBlock(rng);
        Seed seed{rng.next() % (1 << 20) * 128, rng.next() % 100,
                  rng.next() % 64, static_cast<std::uint32_t>(trial % 12)};
        DataBlock cipher = engine.transformed(plain, seed);
        EXPECT_NE(cipher, plain);
        EXPECT_EQ(engine.transformed(cipher, seed), plain);
    }
}

TEST_F(CtrModeTest, PadDependsOnEverySeedComponent)
{
    Seed base{0x1000, 5, 3, 2};
    DataBlock p0 = engine.generatePad(base);

    Seed s = base;
    s.address = 0x1080;
    EXPECT_NE(engine.generatePad(s), p0) << "address must matter";

    s = base;
    s.major = 6;
    EXPECT_NE(engine.generatePad(s), p0) << "major counter must matter";

    s = base;
    s.minor = 4;
    EXPECT_NE(engine.generatePad(s), p0) << "minor counter must matter";

    s = base;
    s.partition = 3;
    EXPECT_NE(engine.generatePad(s), p0) << "partition must matter";
}

TEST_F(CtrModeTest, ChunksWithinBlockDiffer)
{
    // The per-chunk CID must make the eight 16 B pads distinct, or the
    // same 16 B pad would repeat spatially within a cache line.
    DataBlock pad = engine.generatePad({0, 0, 0, 0});
    std::set<std::vector<std::uint8_t>> chunks;
    for (std::size_t c = 0; c < chunksPerBlock; ++c) {
        chunks.insert(std::vector<std::uint8_t>(
            pad.begin() + c * aesChunkBytes,
            pad.begin() + (c + 1) * aesChunkBytes));
    }
    EXPECT_EQ(chunks.size(), chunksPerBlock);
}

TEST_F(CtrModeTest, PadsUniqueAcrossCounterSequence)
{
    // Temporal uniqueness: successive counter values never reuse pads.
    std::set<std::vector<std::uint8_t>> pads;
    for (std::uint64_t minor = 0; minor < 128; ++minor) {
        DataBlock pad = engine.generatePad({0x2000, 1, minor, 0});
        pads.insert(
            std::vector<std::uint8_t>(pad.begin(), pad.end()));
    }
    EXPECT_EQ(pads.size(), 128u);
}

TEST_F(CtrModeTest, DifferentKeysGiveDifferentPads)
{
    CtrModeEngine other(generateKeys(99).encryptionKey);
    Seed seed{0x3000, 2, 1, 0};
    EXPECT_NE(engine.generatePad(seed), other.generatePad(seed));
}

TEST_F(CtrModeTest, SharedCounterSeedEqualsDefaultPerBlockSeed)
{
    // The read-only seed (shared=0, zero pad) must coincide with the
    // default per-block pair (0,0): this is what makes bit-vector
    // aliasing safe (Section IV-B of the paper).
    Seed ro{0x4000, 0, 0, 1};
    Seed per_block{0x4000, 0, 0, 1};
    EXPECT_EQ(engine.generatePad(ro), engine.generatePad(per_block));
}
