/**
 * @file
 * Energy-model tests.
 */

#include <gtest/gtest.h>

#include "gpu/energy.hh"

using namespace shmgpu::gpu;

TEST(Energy, ZeroActivityZeroEnergy)
{
    EXPECT_EQ(totalEnergy(EnergyParams{}, EnergyActivity{}), 0.0);
    EXPECT_EQ(energyPerInstruction(EnergyParams{}, EnergyActivity{}),
              0.0);
}

TEST(Energy, ComponentsAddUp)
{
    EnergyParams p;
    p.staticPerCycle = 10;
    p.perInstruction = 1;
    p.perL2Access = 2;
    p.perDramByte = 0.5;
    p.perMdcAccess = 0.25;
    p.perAesBlock = 3;
    p.perHash = 4;

    EnergyActivity a;
    a.cycles = 100;
    a.instructions = 50;
    a.l2Accesses = 10;
    a.dramBytes = 40;
    a.mdcAccesses = 8;
    a.aesBlocks = 2;
    a.hashes = 1;

    double expected = 10 * 100 + 1 * 50 + 2 * 10 + 0.5 * 40 +
                      0.25 * 8 + 3 * 2 + 4 * 1;
    EXPECT_DOUBLE_EQ(totalEnergy(p, a), expected);
    EXPECT_DOUBLE_EQ(energyPerInstruction(p, a), expected / 50);
}

TEST(Energy, RuntimeDilationRaisesEnergyPerInstruction)
{
    // Same work over more cycles costs more static energy per
    // instruction — the effect behind Fig. 15.
    EnergyParams p;
    EnergyActivity fast, slow;
    fast.cycles = 1000;
    slow.cycles = 1500;
    fast.instructions = slow.instructions = 10000;
    fast.dramBytes = slow.dramBytes = 1 << 20;
    EXPECT_GT(energyPerInstruction(p, slow),
              energyPerInstruction(p, fast));
}

TEST(Energy, ExtraTrafficRaisesEnergy)
{
    EnergyParams p;
    EnergyActivity base, meta;
    base.cycles = meta.cycles = 1000;
    base.instructions = meta.instructions = 10000;
    base.dramBytes = 1 << 20;
    meta.dramBytes = 3 << 20;
    EXPECT_GT(totalEnergy(p, meta), totalEnergy(p, base));
}
