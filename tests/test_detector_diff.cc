/**
 * @file
 * Differential fuzzing of the hardware detectors against the offline
 * oracle, and of the whole prediction machinery against the functional
 * MEE datapath.
 *
 * The contract under test: detector mispredictions are a *performance*
 * phenomenon. The hardware read-only detector may deny read-only
 * status to a truly read-only region (aliasing, never-set entries) but
 * must never grant it to a region the kernel has written; and no
 * combination of predictions may ever change what a verified read
 * decrypts to.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "detect/oracle.hh"
#include "detect/readonly.hh"
#include "detect/streaming.hh"
#include "mee/functional.hh"

using namespace shmgpu;
using namespace shmgpu::detect;
using shmgpu::crypto::DataBlock;

namespace
{

constexpr unsigned kPartitions = 2;
constexpr std::uint64_t kRegionBytes = 16 * 1024;
constexpr std::uint64_t kChunkBytes = 4096;
constexpr std::uint64_t kBlockBytes = 128;
constexpr std::uint64_t kSpaceBytes = 1 << 20;
constexpr std::uint64_t kBlocks = kSpaceBytes / kBlockBytes;

DataBlock
randomBlock(Rng &rng)
{
    DataBlock b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

} // namespace

class DetectorDiff : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Read-only prediction is one-sided: the hardware bit vector (small,
 * tagless, aliasing) may *miss* read-only regions, but whenever the
 * oracle says a region was written, the hardware must agree it is not
 * read-only.
 */
TEST_P(DetectorDiff, ReadOnlyPredictionIsOneSidedVsOracle)
{
    Rng rng(GetParam());
    AccessProfile oracle(kPartitions, kRegionBytes, kChunkBytes,
                         kBlockBytes);
    // Deliberately tiny: 8 entries over a 64-region space forces
    // heavy aliasing, the misprediction source under test.
    ReadOnlyDetectorParams ro_params;
    ro_params.entries = 8;
    ro_params.regionBytes = kRegionBytes;
    std::vector<ReadOnlyDetector> hw;
    for (unsigned p = 0; p < kPartitions; ++p)
        hw.emplace_back(ro_params);

    // Phase 1: host copies mark a random subset of regions read-only.
    // (The oracle only observes kernel traffic; marking is the
    // command-processor path.)
    const std::uint64_t regions = kSpaceBytes / kRegionBytes;
    for (std::uint64_t r = 0; r < regions; ++r)
        if (rng.chance(0.5))
            for (unsigned p = 0; p < kPartitions; ++p)
                hw[p].markInputRegion(r * kRegionBytes, kRegionBytes);

    // Phase 2: a random kernel access stream, no re-marking.
    Cycle now = 0;
    for (int step = 0; step < 20000; ++step) {
        PartitionId part = static_cast<PartitionId>(
            rng.below(kPartitions));
        LocalAddr addr = rng.below(kBlocks) * kBlockBytes;
        bool is_write = rng.chance(0.2);
        oracle.recordAccess(part, addr, is_write, now);
        if (is_write)
            hw[part].recordWrite(addr);
        now += 1 + rng.below(4);
    }
    oracle.finalize(now);

    for (unsigned p = 0; p < kPartitions; ++p) {
        for (std::uint64_t r = 0; r < regions; ++r) {
            LocalAddr probe = r * kRegionBytes;
            if (!oracle.regionReadOnly(p, probe)) {
                EXPECT_FALSE(hw[p].isReadOnly(probe))
                    << "partition " << p << " region " << r
                    << ": hardware claims read-only but the oracle "
                       "saw a write";
                // Provenance must blame a write, not initialization.
                NotReadOnlyCause cause = hw[p].causeFor(probe);
                EXPECT_TRUE(cause == NotReadOnlyCause::WrittenSelf ||
                            cause == NotReadOnlyCause::WrittenAlias ||
                            cause == NotReadOnlyCause::NeverSet);
            }
        }
    }
}

/**
 * With unlimited trackers (the paper's oracle configuration) and a
 * stream whose chunks each have a consistent personality, the online
 * detector and the offline profile must classify every chunk the same
 * way — and correctly.
 */
TEST_P(DetectorDiff, OracleModeStreamingMatchesProfile)
{
    Rng rng(GetParam() ^ 0xabcdef);
    AccessProfile oracle(1, kRegionBytes, kChunkBytes, kBlockBytes);
    StreamingDetectorParams params;
    params.trackers = 0; // unlimited (oracle mode)
    params.chunkBytes = kChunkBytes;
    params.blockBytes = static_cast<std::uint32_t>(kBlockBytes);
    StreamingDetector hw(params);
    std::vector<DetectionEvent> events;

    const std::uint64_t chunks = 32;
    const std::uint64_t blocks_per_chunk = kChunkBytes / kBlockBytes;
    std::vector<bool> role(chunks);
    for (std::uint64_t c = 0; c < chunks; ++c)
        role[c] = rng.chance(0.5); // true = streaming personality

    Cycle now = 0;
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t c = 0; c < chunks; ++c) {
            if (role[c]) {
                // Full sequential pass: every block touched.
                for (std::uint64_t b = 0; b < blocks_per_chunk; ++b) {
                    LocalAddr addr = c * kChunkBytes + b * kBlockBytes;
                    hw.access(addr, false, now, events);
                    oracle.recordAccess(0, addr, false, now);
                    ++now;
                }
            } else {
                // Sparse: a few repeated blocks, gaps left.
                for (int i = 0; i < 6; ++i) {
                    std::uint64_t b = rng.below(4);
                    LocalAddr addr = c * kChunkBytes + b * kBlockBytes;
                    hw.access(addr, false, now, events);
                    oracle.recordAccess(0, addr, false, now);
                    ++now;
                }
            }
        }
    }
    hw.finalizeAll(now, events);
    oracle.finalize(now);

    for (std::uint64_t c = 0; c < chunks; ++c) {
        LocalAddr probe = c * kChunkBytes;
        EXPECT_EQ(hw.predictStreaming(probe), role[c])
            << "chunk " << c << " online classification";
        EXPECT_EQ(oracle.chunkStreaming(0, probe), role[c])
            << "chunk " << c << " oracle classification";
    }
}

/**
 * Whatever a random stream does to a capacity-limited detector, its
 * detection events must be internally consistent: `detected` is
 * exactly full block coverage, coverage exits are always detections,
 * and budget/timeout exits never are.
 */
TEST_P(DetectorDiff, DetectionEventsAreInternallyConsistent)
{
    Rng rng(GetParam() ^ 0x5eed);
    StreamingDetectorParams params;
    params.trackers = 2; // scarce: forces timeouts and reclaims
    params.chunkBytes = kChunkBytes;
    params.blockBytes = static_cast<std::uint32_t>(kBlockBytes);
    StreamingDetector hw(params);
    std::vector<DetectionEvent> events;

    const std::uint64_t blocks_per_chunk = kChunkBytes / kBlockBytes;
    const std::uint64_t full_mask = (blocks_per_chunk >= 64)
                                        ? ~0ull
                                        : (1ull << blocks_per_chunk) - 1;
    Cycle now = 0;
    for (int step = 0; step < 30000; ++step) {
        LocalAddr addr = rng.below(kBlocks) * kBlockBytes;
        hw.access(addr, rng.chance(0.3), now, events);
        now += 1 + rng.below(8);
    }
    hw.finalizeAll(now, events);

    ASSERT_FALSE(events.empty());
    for (const DetectionEvent &ev : events) {
        EXPECT_EQ(ev.detectedStreaming,
                  (ev.accessMask & full_mask) == full_mask);
        if (ev.exit == PhaseExit::Coverage)
            EXPECT_TRUE(ev.detectedStreaming);
        else
            EXPECT_FALSE(ev.detectedStreaming);
    }
}

/**
 * The headline property: mispredictions may change bandwidth, never
 * values. A random operation mix driven by a deliberately tiny
 * (=constantly wrong) read-only detector and a scarce streaming
 * detector must still verify and decrypt every read exactly.
 */
TEST_P(DetectorDiff, MispredictionsNeverBreakFunctionalCorrectness)
{
    Rng rng(GetParam() ^ 0xf00d);
    ReadOnlyDetectorParams ro_params;
    ro_params.entries = 4; // maximal aliasing
    ro_params.regionBytes = kRegionBytes;
    meta::LayoutParams layout;
    layout.dataBytes = kSpaceBytes;
    mee::SecureMemoryContext ctx(layout, GetParam(), ro_params);

    StreamingDetectorParams sd_params;
    sd_params.trackers = 2;
    sd_params.chunkBytes = kChunkBytes;
    sd_params.blockBytes = static_cast<std::uint32_t>(kBlockBytes);
    StreamingDetector streaming(sd_params);
    std::vector<DetectionEvent> events;

    std::map<LocalAddr, DataBlock> shadow;
    Cycle now = 0;
    for (int step = 0; step < 2000; ++step) {
        LocalAddr addr = rng.below(kBlocks) * kBlockBytes;
        streaming.access(addr, rng.chance(0.3), now, events);
        switch (rng.below(6)) {
          case 0: { // host copy; let the (possibly wrong) streaming
                    // prediction pick the marking path
            DataBlock b = randomBlock(rng);
            ctx.hostWrite(addr, b, streaming.predictStreaming(addr));
            shadow[addr] = b;
            break;
          }
          case 1:
          case 2: { // kernel store (may fire an RO transition)
            DataBlock b = randomBlock(rng);
            ctx.deviceWrite(addr, b);
            shadow[addr] = b;
            break;
          }
          default: { // kernel load: must verify and match
            auto it = shadow.find(addr);
            if (it == shadow.end())
                break;
            mee::FunctionalReadResult r = ctx.deviceRead(addr);
            ASSERT_EQ(r.status, mee::VerifyStatus::Ok)
                << "step " << step << " addr " << addr;
            ASSERT_EQ(r.data, it->second)
                << "step " << step << " addr " << addr;
            break;
          }
        }
        now += 1 + rng.below(16);
    }

    // Closing sweep: every shadowed block still reads back exactly.
    for (const auto &[addr, data] : shadow) {
        mee::FunctionalReadResult r = ctx.deviceRead(addr);
        ASSERT_EQ(r.status, mee::VerifyStatus::Ok) << "addr " << addr;
        ASSERT_EQ(r.data, data) << "addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorDiff,
                         ::testing::Values(1ull, 42ull, 0xdecafull,
                                           0x123456789ull));
