/**
 * @file
 * Key-tuple generation tests.
 */

#include <gtest/gtest.h>

#include "crypto/keygen.hh"

using namespace shmgpu::crypto;

TEST(KeyGen, DeterministicPerContext)
{
    KeyTuple a = generateKeys(42);
    KeyTuple b = generateKeys(42);
    EXPECT_EQ(a.encryptionKey, b.encryptionKey);
    EXPECT_EQ(a.macKey, b.macKey);
    EXPECT_EQ(a.treeKey, b.treeKey);
}

TEST(KeyGen, DistinctAcrossContexts)
{
    KeyTuple a = generateKeys(1);
    KeyTuple b = generateKeys(2);
    EXPECT_NE(a.encryptionKey, b.encryptionKey);
    EXPECT_NE(a.macKey, b.macKey);
    EXPECT_NE(a.treeKey, b.treeKey);
}

TEST(KeyGen, TupleMembersDiffer)
{
    // K1, K2, K3 protect different mechanisms and must be unrelated.
    KeyTuple k = generateKeys(7);
    EXPECT_FALSE(k.macKey == k.treeKey);
    std::uint64_t enc_lo = 0;
    for (int i = 7; i >= 0; --i)
        enc_lo = (enc_lo << 8) | k.encryptionKey[i];
    EXPECT_NE(enc_lo, k.macKey.k0);
}

TEST(KeyGen, KeysAreNotDegenerate)
{
    KeyTuple k = generateKeys(1234);
    bool all_zero = true;
    for (auto b : k.encryptionKey)
        all_zero &= (b == 0);
    EXPECT_FALSE(all_zero);
    EXPECT_NE(k.macKey.k0, 0u);
    EXPECT_NE(k.treeKey.k0, 0u);
}
