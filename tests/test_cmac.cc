/**
 * @file
 * AES-CMAC reference-vector tests (RFC 4493) and the paper's
 * birthday-bound arithmetic (Section III-C).
 */

#include <gtest/gtest.h>

#include "crypto/cmac.hh"

using namespace shmgpu::crypto;

namespace
{

Block16
blockFromHex(const char *hex)
{
    Block16 out{};
    auto nibble = [](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return static_cast<std::uint8_t>(c - '0');
        return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    for (int i = 0; i < 16; ++i)
        out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                           nibble(hex[2 * i + 1]));
    return out;
}

/** The RFC 4493 key and message prefix. */
const Block16 kKey = blockFromHex("2b7e151628aed2a6abf7158809cf4f3c");

const std::uint8_t kMsg[64] = {
    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
    0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03,
    0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51, 0x30,
    0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19,
    0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b,
    0x17, 0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10,
};

} // namespace

TEST(AesCmac, Rfc4493EmptyMessage)
{
    AesCmac cmac(kKey);
    EXPECT_EQ(cmac.mac(nullptr, 0),
              blockFromHex("bb1d6929e95937287fa37d129b756746"));
}

TEST(AesCmac, Rfc4493SixteenBytes)
{
    AesCmac cmac(kKey);
    EXPECT_EQ(cmac.mac(kMsg, 16),
              blockFromHex("070a16b46b4d4144f79bdd9dd04a287c"));
}

TEST(AesCmac, Rfc4493FortyBytes)
{
    AesCmac cmac(kKey);
    EXPECT_EQ(cmac.mac(kMsg, 40),
              blockFromHex("dfa66747de9ae63030ca32611497c827"));
}

TEST(AesCmac, Rfc4493SixtyFourBytes)
{
    AesCmac cmac(kKey);
    EXPECT_EQ(cmac.mac(kMsg, 64),
              blockFromHex("51f0bebf7e3b9d92fc49741779363cfe"));
}

TEST(AesCmac, Mac64IsTagPrefix)
{
    AesCmac cmac(kKey);
    Block16 tag = cmac.mac(kMsg, 16);
    std::uint64_t short_tag = cmac.mac64(kMsg, 16);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(static_cast<std::uint8_t>(short_tag >> (8 * i)),
                  tag[i]);
}

TEST(AesCmac, KeySeparation)
{
    AesCmac a(kKey);
    AesCmac b(blockFromHex("00000000000000000000000000000001"));
    EXPECT_NE(a.mac(kMsg, 32), b.mac(kMsg, 32));
}

TEST(MacTruncation, KeepsLowBits)
{
    EXPECT_EQ(truncateMac(0xFFFFFFFFFFFFFFFFull, 32), 0xFFFFFFFFull);
    EXPECT_EQ(truncateMac(0x123456789ABCDEF0ull, 16), 0xDEF0ull);
    EXPECT_EQ(truncateMac(0x123456789ABCDEF0ull, 64),
              0x123456789ABCDEF0ull);
    EXPECT_DEATH(truncateMac(1, 0), "out of range");
}

TEST(MacTruncation, BirthdayBoundMatchesPaper)
{
    // Section III-C: a 4 GB device with 128 B blocks holds 2^25
    // blocks, so the MAC must be at least 50 bits for collision
    // resistance; a truncated 32-bit MAC collides after ~2^16 writes.
    EXPECT_EQ(minimumMacBits(4ull << 30, 128), 50u);
    EXPECT_DOUBLE_EQ(collisionExponent(50), 25.0);
    EXPECT_DOUBLE_EQ(collisionExponent(32), 16.0);
    EXPECT_DOUBLE_EQ(collisionExponent(64), 32.0);
    // 8 B MACs (the paper's default) clear the bar comfortably.
    EXPECT_GE(64u, minimumMacBits(4ull << 30, 128));
}
