/**
 * @file
 * Differential fuzz of the batched, runtime-dispatched crypto kernels
 * against the scalar reference path.
 *
 * The batched backends (AES-NI / VAES / interleaved SipHash / batched
 * CMAC) exist purely for software speed: the contract is that every
 * one of them is *byte-identical* to the portable scalar
 * implementations for random keys, counters, lengths, and batch
 * sizes — including ragged tails that don't fill a 4/8-lane group.
 * Each test runs against every backend the host CPU supports; the
 * scalar batch path is always exercised, so the suite is meaningful
 * on non-x86 CI too. These tests carry the fuzz label and run under
 * ASan/UBSan in the sanitize tier.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "crypto/aes128.hh"
#include "crypto/aes128_batch.hh"
#include "crypto/cmac.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/dispatch.hh"
#include "crypto/keygen.hh"
#include "crypto/mac.hh"
#include "crypto/siphash.hh"
#include "mee/functional.hh"

using namespace shmgpu;
using namespace shmgpu::crypto;

namespace
{

Block16
randomBlock(Rng &rng)
{
    Block16 b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

DataBlock
randomData(Rng &rng)
{
    DataBlock d;
    for (auto &byte : d)
        byte = static_cast<std::uint8_t>(rng.next());
    return d;
}

Seed
randomSeed(Rng &rng)
{
    return Seed{rng.next() & 0xffffffffff80ull, rng.next(), rng.next(),
                static_cast<std::uint32_t>(rng.next() & 0xffff)};
}

/** Every backend this host can run, scalar always included. */
std::vector<Backend>
supportedBackends()
{
    std::vector<Backend> out{Backend::Scalar};
    for (Backend b : {Backend::AesNi, Backend::Vaes})
        if (backendSupported(b))
            out.push_back(b);
    return out;
}

// Batch sizes chosen to hit the 8-lane path, the 4-lane path, the
// scalar tail, and every ragged combination of them.
constexpr std::size_t batchSizes[] = {0, 1, 2, 3, 4, 5, 6, 7,
                                      8, 9, 11, 12, 15, 16, 31, 64};

meta::LayoutParams
meeLayout()
{
    meta::LayoutParams p;
    p.dataBytes = 1 << 20;
    return p;
}

} // namespace

TEST(CryptoDispatch, ProbeAndNames)
{
    Backend best = bestSupportedBackend();
    EXPECT_TRUE(backendSupported(Backend::Scalar));
    EXPECT_TRUE(backendSupported(best));
    for (Backend b : supportedBackends()) {
        EXPECT_EQ(backendFromName(backendName(b)), b);
    }
    EXPECT_EQ(backendFromName("auto"), best);
}

TEST(CryptoDispatch, ForceScalarGlobally)
{
    Backend saved = activeBackend();
    setBackend(Backend::Scalar);
    EXPECT_EQ(activeBackend(), Backend::Scalar);
    Aes128Batch batch(generateKeys(7).encryptionKey);
    EXPECT_EQ(batch.backend(), Backend::Scalar);
    setBackend(saved);
}

TEST(CryptoBatchFuzz, AesBatchMatchesScalar)
{
    Rng rng(0xae5bea7c);
    for (Backend backend : supportedBackends()) {
        for (unsigned rep = 0; rep < 20; ++rep) {
            Block16 key = randomBlock(rng);
            Aes128 ref(key);
            Aes128Batch batch(key, backend);
            for (std::size_t n : batchSizes) {
                std::vector<Block16> in(n), out(n ? n : 1);
                for (auto &b : in)
                    b = randomBlock(rng);
                batch.encryptBlocks(in.data(), out.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(out[i], ref.encrypt(in[i]))
                        << backendName(backend) << " n=" << n
                        << " i=" << i;
            }
        }
    }
}

TEST(CryptoBatchFuzz, AesBatchInPlace)
{
    Rng rng(0x1e5bea7c);
    for (Backend backend : supportedBackends()) {
        Block16 key = randomBlock(rng);
        Aes128 ref(key);
        Aes128Batch batch(key, backend);
        for (std::size_t n : batchSizes) {
            std::vector<Block16> blocks(n), expect(n);
            for (std::size_t i = 0; i < n; ++i) {
                blocks[i] = randomBlock(rng);
                expect[i] = ref.encrypt(blocks[i]);
            }
            batch.encryptBlocks(blocks.data(), blocks.data(), n);
            EXPECT_EQ(blocks, expect) << backendName(backend);
        }
    }
}

TEST(CryptoBatchFuzz, CtrKeystreamMatchesScalar)
{
    Rng rng(0xc7bbeef);
    for (Backend backend : supportedBackends()) {
        for (unsigned rep = 0; rep < 8; ++rep) {
            Block16 key = randomBlock(rng);
            CtrModeEngine ref(key, Backend::Scalar);
            CtrModeEngine eng(key, backend);
            // Single-seed pad (the 8-chunk batch inside generatePad).
            Seed s = randomSeed(rng);
            EXPECT_EQ(eng.generatePad(s), ref.generatePad(s));

            for (std::size_t n : batchSizes) {
                std::vector<Seed> seeds(n);
                std::vector<DataBlock> data(n), expect(n);
                for (std::size_t i = 0; i < n; ++i) {
                    seeds[i] = randomSeed(rng);
                    data[i] = randomData(rng);
                    expect[i] = ref.transformed(data[i], seeds[i]);
                }
                eng.transformBatch(data.data(), seeds.data(), n);
                EXPECT_EQ(data, expect)
                    << backendName(backend) << " n=" << n;
            }
        }
    }
}

TEST(CryptoBatchFuzz, CtrTransformIsInvolution)
{
    Rng rng(0x11223344);
    CtrModeEngine eng(randomBlock(rng));
    std::vector<Seed> seeds(13);
    std::vector<DataBlock> data(13), orig(13);
    for (std::size_t i = 0; i < data.size(); ++i) {
        seeds[i] = randomSeed(rng);
        data[i] = randomData(rng);
        orig[i] = data[i];
    }
    eng.transformBatch(data.data(), seeds.data(), data.size());
    eng.transformBatch(data.data(), seeds.data(), data.size());
    EXPECT_EQ(data, orig);
}

TEST(CryptoBatchFuzz, SipHashBatchMatchesScalar)
{
    Rng rng(0x51bba5b);
    for (unsigned rep = 0; rep < 12; ++rep) {
        SipKey key{rng.next(), rng.next()};
        // Random shared length, including sub-word and zero lengths.
        std::size_t len = static_cast<std::size_t>(rng.below(96));
        for (std::size_t n : batchSizes) {
            std::vector<std::vector<std::uint8_t>> msgs(n);
            std::vector<const void *> ptrs(n);
            for (std::size_t i = 0; i < n; ++i) {
                msgs[i].resize(len);
                for (auto &b : msgs[i])
                    b = static_cast<std::uint8_t>(rng.next());
                ptrs[i] = msgs[i].data();
            }
            std::vector<std::uint64_t> out(n ? n : 1);
            siphash24Batch(key, ptrs.data(), len, out.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(out[i], siphash24(key, ptrs[i], len))
                    << "len=" << len << " n=" << n << " i=" << i;
        }
    }
}

TEST(CryptoBatchFuzz, BlockMacBatchMatchesScalar)
{
    Rng rng(0xb10c3ac);
    MacEngine eng(generateKeys(rng.next()).macKey);
    for (std::size_t n : batchSizes) {
        std::vector<DataBlock> cts(n);
        std::vector<BlockMacInput> jobs(n);
        for (std::size_t i = 0; i < n; ++i) {
            cts[i] = randomData(rng);
            jobs[i] = {&cts[i], rng.next() & 0xffffffffff80ull,
                       rng.next(), rng.next(),
                       static_cast<std::uint32_t>(rng.next() & 0xff)};
        }
        std::vector<Mac> out(n ? n : 1);
        eng.blockMacBatch(jobs, out.data());
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i],
                      eng.blockMac(*jobs[i].ciphertext, jobs[i].addr,
                                   jobs[i].major, jobs[i].minor,
                                   jobs[i].partition))
                << "n=" << n << " i=" << i;
    }
}

TEST(CryptoBatchFuzz, CmacBatchMatchesScalarRaggedLengths)
{
    Rng rng(0xc3acc3ac);
    for (Backend backend : supportedBackends()) {
        for (unsigned rep = 0; rep < 6; ++rep) {
            Block16 key = randomBlock(rng);
            AesCmac ref(key, Backend::Scalar);
            AesCmac eng(key, backend);
            for (std::size_t n : batchSizes) {
                // Ragged lengths per lane: empty, partial, complete,
                // and multi-block messages mixed in one batch.
                std::vector<std::vector<std::uint8_t>> msgs(n);
                std::vector<const void *> ptrs(n);
                std::vector<std::size_t> lens(n);
                for (std::size_t i = 0; i < n; ++i) {
                    lens[i] = static_cast<std::size_t>(rng.below(100));
                    msgs[i].resize(lens[i]);
                    for (auto &b : msgs[i])
                        b = static_cast<std::uint8_t>(rng.next());
                    ptrs[i] = msgs[i].data();
                }
                std::vector<Block16> tags(n ? n : 1);
                eng.macBatch(ptrs.data(), lens.data(), n, tags.data());
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(tags[i], ref.mac(ptrs[i], lens[i]))
                        << backendName(backend) << " n=" << n
                        << " i=" << i << " len=" << lens[i];

                std::vector<std::uint64_t> tags64(n ? n : 1);
                eng.mac64Batch(ptrs.data(), lens.data(), n,
                               tags64.data());
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(tags64[i], ref.mac64(ptrs[i], lens[i]));
            }
        }
    }
}

// The MEE-level batch paths must be bit-identical to their sequential
// equivalents: same stored ciphertexts, same stored MACs, same
// decrypted reads — under every supported AES backend.
TEST(CryptoBatchFuzz, MeeHostWriteRangeMatchesPerBlock)
{
    Rng rng(0x4057e11a);
    for (Backend backend : supportedBackends()) {
        Backend saved = activeBackend();
        setBackend(backend);
        mee::SecureMemoryContext batched(meeLayout(), 99);
        mee::SecureMemoryContext serial(meeLayout(), 99);
        setBackend(saved);

        constexpr std::size_t blocks = 37; // spans chunk boundaries
        std::vector<std::uint8_t> data(blocks * 128);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());

        batched.hostWriteRange(0x4000, data.data(), data.size());
        for (std::size_t i = 0; i < blocks; ++i) {
            DataBlock plain;
            std::memcpy(plain.data(), data.data() + i * 128, 128);
            serial.hostWrite(0x4000 + i * 128, plain);
        }

        for (std::size_t i = 0; i < blocks; ++i) {
            LocalAddr a = 0x4000 + i * 128;
            ASSERT_EQ(batched.memory().readBlock(a),
                      serial.memory().readBlock(a))
                << backendName(backend) << " block " << i;
            ASSERT_EQ(batched.macStore().blockMac(a),
                      serial.macStore().blockMac(a));
            auto rb = batched.deviceRead(a);
            auto rs = serial.deviceRead(a);
            ASSERT_EQ(rb.status, mee::VerifyStatus::Ok);
            ASSERT_EQ(rb.data, rs.data);
        }
        EXPECT_EQ(batched.verifyChunk(0x4000), mee::VerifyStatus::Ok);
    }
}

TEST(CryptoBatchFuzz, MeeDeviceReadBatchMatchesSequential)
{
    Rng rng(0xdeadbeef);
    mee::SecureMemoryContext ctx(meeLayout(), 7);

    // Mixed population: read-only host input, device-written blocks,
    // and never-touched (lazily MAC-initialized) blocks.
    std::vector<LocalAddr> addrs;
    for (std::size_t i = 0; i < 8; ++i) {
        LocalAddr a = 0x8000 + i * 128;
        DataBlock plain;
        for (auto &b : plain)
            b = static_cast<std::uint8_t>(rng.next());
        ctx.hostWrite(a, plain);
        addrs.push_back(a);
    }
    for (std::size_t i = 0; i < 8; ++i) {
        LocalAddr a = 0x20000 + i * 128;
        DataBlock plain;
        for (auto &b : plain)
            b = static_cast<std::uint8_t>(rng.next());
        ctx.deviceWrite(a, plain);
        addrs.push_back(a);
    }
    for (std::size_t i = 0; i < 5; ++i)
        addrs.push_back(0x40000 + i * 128);

    // One tampered block must report MacMismatch in the batch too.
    DataBlock corrupted = ctx.memory().readBlock(0x20000);
    corrupted[3] ^= 0x40;
    ctx.memory().writeBlock(0x20000, corrupted);

    mee::SecureMemoryContext ref(meeLayout(), 7);
    // Rebuild the reference context identically (fresh RNG, same seed).
    Rng rng2(0xdeadbeef);
    for (std::size_t i = 0; i < 8; ++i) {
        DataBlock plain;
        for (auto &b : plain)
            b = static_cast<std::uint8_t>(rng2.next());
        ref.hostWrite(0x8000 + i * 128, plain);
    }
    for (std::size_t i = 0; i < 8; ++i) {
        DataBlock plain;
        for (auto &b : plain)
            b = static_cast<std::uint8_t>(rng2.next());
        ref.deviceWrite(0x20000 + i * 128, plain);
    }
    ref.memory().writeBlock(0x20000, corrupted);

    std::vector<mee::FunctionalReadResult> batch(addrs.size());
    ctx.deviceReadBatch(addrs.data(), batch.data(), addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        auto seq = ref.deviceRead(addrs[i]);
        ASSERT_EQ(batch[i].status, seq.status) << "i=" << i;
        ASSERT_EQ(batch[i].data, seq.data) << "i=" << i;
    }
    EXPECT_EQ(batch[8].status, mee::VerifyStatus::MacMismatch);
}

// RFC 4493 known answers must hold through the batch path too (the
// scalar AesCmac KATs live in test_cmac.cc).
TEST(CryptoBatch, CmacBatchRfc4493)
{
    Block16 key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                   0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const std::uint8_t msg[40] = {
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d,
        0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57,
        0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
        0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11};
    const void *ptrs[3] = {msg, msg, msg};
    const std::size_t lens[3] = {0, 16, 40};
    Block16 expect0 = {0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28,
                       0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75, 0x67, 0x46};
    Block16 expect16 = {0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44,
                        0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a, 0x28, 0x7c};
    Block16 expect40 = {0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30,
                        0x30, 0xca, 0x32, 0x61, 0x14, 0x97, 0xc8, 0x27};
    for (Backend backend : supportedBackends()) {
        AesCmac eng(key, backend);
        Block16 tags[3];
        eng.macBatch(ptrs, lens, 3, tags);
        EXPECT_EQ(tags[0], expect0) << backendName(backend);
        EXPECT_EQ(tags[1], expect16) << backendName(backend);
        EXPECT_EQ(tags[2], expect40) << backendName(backend);
    }
}
