/**
 * @file
 * Golden pins for the adaptive scheme (Scheme::ShmAdaptive): a 3
 * workload x 2 epoch grid's metrics — including the controller
 * tallies (demotions, promotions, re-encrypted bytes) — are pinned in
 * tests/golden/golden_adaptive.json, serially and at --shards 4.
 * The controller's decision sequence is part of the simulated
 * machine, so any change to the classification rules or transition
 * costs shows up here rather than drifting silently.
 *
 * Regenerate after an *intentional* behaviour change with:
 *
 *   SHMGPU_UPDATE_GOLDEN=1 ./build/tests/test_golden_adaptive
 *
 * then review the JSON diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>

#include "core/sweep.hh"

using namespace shmgpu;
using namespace shmgpu::core;

#ifndef SHMGPU_GOLDEN_DIR
#error "build must define SHMGPU_GOLDEN_DIR"
#endif

namespace
{

constexpr double kTolerance = 1e-9;

std::string
goldenPath()
{
    return std::string(SHMGPU_GOLDEN_DIR) + "/golden_adaptive.json";
}

/** The pinned grid: the three micros at a fast and a slow
 *  reclassification epoch. Changing it invalidates the golden file. */
std::vector<ExperimentResult>
runPinnedGrid(const std::function<void(gpu::GpuParams &)> &mutate = {})
{
    gpu::GpuParams params;
    params.maxCyclesPerKernel = 20000;
    if (mutate)
        mutate(params);

    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    workload::WorkloadSpec mixed = workload::makeMixedMicro();

    SweepRunner runner(params);
    std::vector<ExperimentResult> all;
    for (Cycle epoch : {Cycle{2000}, Cycle{10000}}) {
        SweepOptions opts;
        opts.run.adaptEpoch = epoch;
        auto results =
            runner.run({schemes::Scheme::ShmAdaptive},
                       {&stream, &random, &mixed}, opts);
        all.insert(all.end(), results.begin(), results.end());
    }
    return all;
}

json::Value
goldenFromResults(const std::vector<ExperimentResult> &results)
{
    json::Value doc = json::Value::object();
    doc["comment"] = json::Value(
        "Pinned SHM_adaptive metrics; regenerate with "
        "SHMGPU_UPDATE_GOLDEN=1 ./build/tests/test_golden_adaptive");
    doc["maxCyclesPerKernel"] = json::Value(20000);
    json::Value arr = json::Value::array();
    for (const auto &r : results) {
        json::Value cell = json::Value::object();
        cell["workload"] = json::Value(r.workload);
        cell["scheme"] = json::Value(r.scheme);
        cell["adaptEpoch"] = json::Value(r.adaptEpoch);
        cell["normalizedIpc"] = json::Value(r.normalizedIpc);
        cell["overhead"] = json::Value(r.overhead());
        cell["metadataOverhead"] =
            json::Value(r.metrics.metadataOverhead());
        cell["adaptDemotions"] = json::Value(r.metrics.adaptDemotions);
        cell["adaptPromotions"] = json::Value(r.metrics.adaptPromotions);
        cell["adaptReencBytes"] = json::Value(r.metrics.adaptReencBytes);
        arr.append(std::move(cell));
    }
    doc["cells"] = std::move(arr);
    return doc;
}

bool
updateRequested()
{
    const char *env = std::getenv("SHMGPU_UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

void
expectMatchesGolden(const std::vector<ExperimentResult> &results)
{
    json::Value current = goldenFromResults(results);
    json::Value golden = json::Value::parseFile(goldenPath());
    const auto &want = golden.at("cells");
    const auto &got = current.at("cells");
    ASSERT_EQ(got.size(), want.size())
        << "grid shape changed; regenerate the golden file";

    for (std::size_t i = 0; i < want.size(); ++i) {
        const auto &w = want.at(i);
        const auto &g = got.at(i);
        SCOPED_TRACE(w.at("workload").asString() + "/epoch=" +
                     std::to_string(static_cast<std::uint64_t>(
                         w.at("adaptEpoch").asNumber())));
        ASSERT_EQ(g.at("workload").asString(),
                  w.at("workload").asString());
        ASSERT_EQ(g.at("scheme").asString(), w.at("scheme").asString());
        ASSERT_EQ(g.at("adaptEpoch").asNumber(),
                  w.at("adaptEpoch").asNumber());
        for (const char *metric :
             {"normalizedIpc", "overhead", "metadataOverhead",
              "adaptDemotions", "adaptPromotions", "adaptReencBytes"}) {
            EXPECT_NEAR(g.at(metric).asNumber(),
                        w.at(metric).asNumber(), kTolerance)
                << metric << " drifted beyond 1e-9 — if intentional, "
                << "regenerate with SHMGPU_UPDATE_GOLDEN=1";
        }
    }
}

} // namespace

TEST(GoldenAdaptive, PinnedGridMatchesGoldenFile)
{
    auto results = runPinnedGrid();

    if (updateRequested()) {
        json::Value current = goldenFromResults(results);
        std::ofstream os(goldenPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        current.write(os, 2);
        os << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    expectMatchesGolden(results);
}

TEST(GoldenAdaptive, ShardedGridMatchesGoldenFile)
{
    // The controller's decisions are driven from per-partition access
    // streams, never from shard scheduling, so --shards 4 must
    // reproduce the committed numbers bit for bit. This variant never
    // regenerates — the serial test owns the file.
    expectMatchesGolden(
        runPinnedGrid([](gpu::GpuParams &p) { p.shards = 4; }));
}

TEST(GoldenAdaptive, GoldenFileIsSelfConsistent)
{
    // Parseable, right shape, sane ranges, and the controller really
    // fired somewhere in the grid (a golden file pinning an inert
    // controller would guard nothing).
    json::Value golden = json::Value::parseFile(goldenPath());
    const auto &cells = golden.at("cells");
    ASSERT_EQ(cells.size(), 6u);
    double total_transitions = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells.at(i);
        double n = c.at("normalizedIpc").asNumber();
        EXPECT_GT(n, 0.0);
        EXPECT_LE(n, 1.001);
        EXPECT_NEAR(c.at("overhead").asNumber(), 1.0 - n, 1e-12);
        EXPECT_GE(c.at("adaptDemotions").asNumber(), 0.0);
        total_transitions += c.at("adaptDemotions").asNumber() +
                             c.at("adaptPromotions").asNumber();
    }
    EXPECT_GT(total_transitions, 0.0)
        << "no cell exercised the adaptive controller";
}
