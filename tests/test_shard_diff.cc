/**
 * @file
 * Differential test of the sharded kernel engine against the serial
 * event engine.
 *
 * `--shards N` claims bit-identical results for every N: the sharded
 * engine (GpuSimulator::shardedKernelLoop) defers partition work to
 * epoch barriers and fans it out over worker threads, and this test is
 * the proof that nothing observable moves. It runs curated micros and
 * randomized specs — every scheme (including the physically-addressed
 * ones whose partitions couple into a single domain), every access
 * pattern, cap-hitting budgets, and stall-heavy tiny windows — at
 * shards 1, 2, and 4 and requires the full RunMetrics and the entire
 * stats tree to match exactly. Unlike the event-vs-reference diff,
 * cycles_skipped is compared too: both engines walk the same event
 * sequence, so even the skip accounting must agree.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hh"
#include "gpu/presets.hh"
#include "mem/replacement.hh"
#include "gpu/simulator.hh"
#include "schemes/schemes.hh"
#include "workload/benchmarks.hh"
#include "workload/spec.hh"

using namespace shmgpu;
using namespace shmgpu::gpu;

namespace
{

/** More SMs and partitions than testConfig so four shards get
 *  distinct domains and the crossbar sees real contention. */
GpuParams
shardConfig()
{
    GpuParams gp = testConfig();
    gp.numSms = 8;
    gp.numPartitions = 6;
    return gp;
}

struct EngineResult
{
    RunMetrics metrics;
    std::string stats;
};

EngineResult
runWithShards(std::uint32_t shards, const GpuParams &base,
              const mee::MeeParams &mp, const workload::WorkloadSpec &w)
{
    GpuParams gp = base;
    gp.shards = shards;
    GpuSimulator sim(gp, mp, w);
    EngineResult r;
    r.metrics = sim.run();
    std::ostringstream os;
    sim.statsRoot().dump(os);
    r.stats = os.str();
    return r;
}

/** Require shards 2 and 4 to reproduce the serial run exactly. */
void
expectIdentical(const GpuParams &gp, const mee::MeeParams &mp,
                const workload::WorkloadSpec &w, const std::string &what)
{
    SCOPED_TRACE(what);
    EngineResult serial = runWithShards(1, gp, mp, w);
    for (std::uint32_t shards : {2u, 4u}) {
        EngineResult sharded = runWithShards(shards, gp, mp, w);
        SCOPED_TRACE("shards=" + std::to_string(shards));

        EXPECT_EQ(sharded.metrics.cycles, serial.metrics.cycles);
        EXPECT_EQ(sharded.metrics.instructions,
                  serial.metrics.instructions);
        EXPECT_EQ(sharded.metrics.ipc, serial.metrics.ipc);
        EXPECT_EQ(sharded.metrics.bytesData, serial.metrics.bytesData);
        EXPECT_EQ(sharded.metrics.bytesCounter,
                  serial.metrics.bytesCounter);
        EXPECT_EQ(sharded.metrics.bytesMac, serial.metrics.bytesMac);
        EXPECT_EQ(sharded.metrics.bytesBmt, serial.metrics.bytesBmt);
        EXPECT_EQ(sharded.metrics.bytesExtra, serial.metrics.bytesExtra);
        EXPECT_EQ(sharded.metrics.bandwidthUtilization,
                  serial.metrics.bandwidthUtilization);
        EXPECT_EQ(sharded.metrics.l2MissRate, serial.metrics.l2MissRate);
        EXPECT_EQ(sharded.metrics.sharedCtrReads,
                  serial.metrics.sharedCtrReads);
        EXPECT_EQ(sharded.metrics.commonCtrHits,
                  serial.metrics.commonCtrHits);
        EXPECT_EQ(sharded.metrics.roTransitions,
                  serial.metrics.roTransitions);
        EXPECT_EQ(sharded.metrics.chunkMacAccesses,
                  serial.metrics.chunkMacAccesses);
        EXPECT_EQ(sharded.metrics.blockMacAccesses,
                  serial.metrics.blockMacAccesses);
        EXPECT_EQ(sharded.metrics.dualMacFallbacks,
                  serial.metrics.dualMacFallbacks);
        EXPECT_EQ(sharded.metrics.victimHits, serial.metrics.victimHits);
        EXPECT_EQ(sharded.metrics.victimInserts,
                  serial.metrics.victimInserts);
        EXPECT_EQ(sharded.stats, serial.stats);
    }
}

/** Same generator shape as test_kernel_loop_diff: every pattern,
 *  compute ratios 0..8, stall-heavy windows, read-only pre-copies. */
workload::WorkloadSpec
randomSpec(Rng &rng, unsigned idx)
{
    workload::WorkloadSpec w;
    w.name = "shard_rand_" + std::to_string(idx);
    w.suite = "diff";
    w.seed = rng.next();

    std::uint32_t nbufs = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t b = 0; b < nbufs; ++b) {
        workload::BufferSpec buf;
        buf.name = "b" + std::to_string(b);
        buf.bytes = (64 + rng.below(192)) << 10; // 64 KiB .. 256 KiB
        w.buffers.push_back(buf);
    }

    static constexpr workload::Pattern patterns[] = {
        workload::Pattern::Streaming, workload::Pattern::Random,
        workload::Pattern::RandomHot, workload::Pattern::Strided};
    static constexpr std::uint32_t windows[] = {0, 1, 2, 8};

    std::uint32_t nkernels = 1 + static_cast<std::uint32_t>(rng.below(2));
    for (std::uint32_t k = 0; k < nkernels; ++k) {
        workload::KernelSpec ks;
        ks.name = "k" + std::to_string(k);
        ks.iterationsPerSm = 32 + rng.below(224);
        ks.computePerMem = static_cast<std::uint32_t>(rng.below(9));
        ks.maxOutstanding = windows[rng.below(4)];
        std::uint32_t nstreams =
            1 + static_cast<std::uint32_t>(rng.below(3));
        for (std::uint32_t s = 0; s < nstreams; ++s) {
            workload::StreamSpec ss;
            ss.buffer = static_cast<std::uint32_t>(rng.below(nbufs));
            ss.pattern = patterns[rng.below(4)];
            ss.write = rng.below(10) < 3;
            ss.prob = 0.5 + 0.5 * static_cast<double>(rng.below(2));
            ks.streams.push_back(ss);
        }
        if (k == 0) {
            for (std::uint32_t b = 0; b < nbufs; ++b) {
                workload::HostCopySpec hc;
                hc.buffer = b;
                hc.marksReadOnly = rng.below(4) != 0;
                hc.declaredReadOnly = rng.below(4) == 0;
                ks.preCopies.push_back(hc);
            }
        }
        w.kernels.push_back(ks);
    }
    return w;
}

} // namespace

TEST(ShardDiff, CuratedMicrosUnderAllSchemes)
{
    // Covers both domain regimes: local-metadata schemes shard one
    // domain per partition; Naive/Common_ctr couple into a single
    // domain and must fall back to the serial engine, still identical.
    GpuParams gp = shardConfig();
    for (const auto &w :
         {workload::makeStreamingMicro(1 << 20, 256),
          workload::makeMixedMicro(), workload::makeMultiKernelMicro()}) {
        for (auto s : schemes::allSchemes())
            expectIdentical(gp, schemes::makeMeeParams(s), w,
                            w.name + " / " + schemes::schemeName(s));
    }
}

TEST(ShardDiff, RandomizedSpecs)
{
    GpuParams gp = shardConfig();
    Rng rng(0x5AADu);
    const auto &schemes_all = schemes::allSchemes();
    for (unsigned i = 0; i < 12; ++i) {
        auto w = randomSpec(rng, i);
        auto s = schemes_all[i % schemes_all.size()];
        expectIdentical(gp, schemes::makeMeeParams(s), w,
                        w.name + " / " + schemes::schemeName(s));
    }
}

TEST(ShardDiff, CapHittingKernels)
{
    // Caps inside (and far inside) a single epoch: frozen stalls,
    // abandoned in-flight loads, and clamped compute batches must
    // resolve identically when the barrier does the stall accounting.
    GpuParams gp = shardConfig();
    Rng rng(0xCAB5u);
    for (Cycle cap : {1u, 7u, 100u, 1000u}) {
        gp.maxCyclesPerKernel = cap;
        for (unsigned i = 0; i < 4; ++i) {
            auto w = randomSpec(rng, 100 + i);
            auto s = schemes::allSchemes()[i %
                                           schemes::allSchemes().size()];
            expectIdentical(gp, schemes::makeMeeParams(s), w,
                            "cap=" + std::to_string(cap) + " " + w.name +
                                " / " + schemes::schemeName(s));
        }
    }
}

TEST(ShardDiff, OneLoadWindowParksEverySm)
{
    // window=1 makes every second read stall with its only in-flight
    // completion undelivered — the heaviest use of the park/unpark
    // path — and the per-cycle stall counts must still match.
    GpuParams gp = shardConfig();
    gp.smWindow = 4;
    gp.maxCyclesPerKernel = 2000;
    auto w = workload::makeStreamingMicro(1 << 20, 128);
    for (auto &k : w.kernels)
        k.maxOutstanding = 1;
    expectIdentical(gp, schemes::makeMeeParams(schemes::Scheme::Shm), w,
                    "window=1 streaming");
}

TEST(ShardDiff, PolicyVariantsStayIdentical)
{
    // Replacement-policy state (S3FIFO queues + ghost table, SIEVE's
    // hand) lives per cache set, and the Random stream is seeded from
    // the cache's position, so shard count must not leak into any
    // replacement decision. ShmVL2 rides along for the victim-cache
    // extraction path (onEvict tombstones under the stateful
    // policies).
    GpuParams gp = shardConfig();
    auto w = workload::makeMixedMicro();
    for (mem::PolicyKind policy :
         {mem::PolicyKind::S3Fifo, mem::PolicyKind::Sieve,
          mem::PolicyKind::Random}) {
        gp.l2Policy = policy;
        for (auto s : {schemes::Scheme::Shm, schemes::Scheme::ShmVL2,
                       schemes::Scheme::Naive}) {
            mee::MeeParams mp = schemes::makeMeeParams(s);
            mp.mdcPolicy = policy;
            expectIdentical(gp, mp, w,
                            std::string(mem::policyName(policy)) +
                                " / " + schemes::schemeName(s));
        }
    }
}

TEST(ShardDiff, ShardCountAboveDomainsClamps)
{
    // More shards than partitions (and than domains) must clamp, not
    // crash, and still reproduce the serial run.
    GpuParams gp = shardConfig();
    auto w = workload::makeStreamingMicro(1 << 20, 128);
    auto mp = schemes::makeMeeParams(schemes::Scheme::Pssm);
    EngineResult serial = runWithShards(1, gp, mp, w);
    EngineResult wide = runWithShards(64, gp, mp, w);
    EXPECT_EQ(wide.metrics.cycles, serial.metrics.cycles);
    EXPECT_EQ(wide.stats, serial.stats);
}
