/**
 * @file
 * Timing-MEE tests: per-scheme metadata traffic, the shared-counter
 * read-only path, common counters, dual-granularity MACs, and the
 * victim-cache interface — driven through a mock DRAM router.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mee/engine.hh"
#include "mem/addr_map.hh"
#include "meta/counters.hh"
#include "meta/layout.hh"

using namespace shmgpu;
using namespace shmgpu::mee;

namespace
{

/** Records every metadata transaction the MEE issues. */
class MockRouter : public DramRouter
{
  public:
    struct Txn
    {
        PartitionId target;
        Addr addr;
        std::uint32_t bytes;
        mem::AccessType type;
        mem::TrafficClass cls;
    };

    Cycle
    enqueueMeta(PartitionId target, Addr bank_addr, std::uint32_t bytes,
                mem::AccessType type, mem::TrafficClass cls,
                Cycle now) override
    {
        txns.push_back({target, bank_addr, bytes, type, cls});
        return now + 50;
    }

    std::uint64_t
    bytesOf(mem::TrafficClass cls) const
    {
        std::uint64_t total = 0;
        for (const auto &t : txns)
            if (t.cls == cls)
                total += t.bytes;
        return total;
    }

    std::vector<Txn> txns;
};

/** Scripted victim-cache stub. */
class MockVictim : public VictimCacheIf
{
  public:
    bool victimActive() const override { return active; }

    bool
    victimProbe(Addr addr) override
    {
        probes.push_back(addr);
        return hit;
    }

    void
    victimInsert(Addr addr, std::uint32_t, std::uint32_t,
                 mem::TrafficClass, Cycle) override
    {
        inserts.push_back(addr);
    }

    Cycle victimHitLatency() const override { return 32; }

    bool active = false;
    bool hit = false;
    std::vector<Addr> probes;
    std::vector<Addr> inserts;
};

class MeeEngineTest : public ::testing::Test
{
  protected:
    MeeEngineTest()
        : layout(makeLayout()), map(12, 256),
          common(layout)
    {
    }

    static meta::LayoutParams
    makeLayout()
    {
        meta::LayoutParams p;
        p.dataBytes = 16 << 20;
        return p;
    }

    std::unique_ptr<MeeEngine>
    makeEngine(MeeParams p, VictimCacheIf *victim = nullptr)
    {
        return std::make_unique<MeeEngine>(
            p, 0, &layout, &router, victim, &map,
            p.commonCounters ? &common : nullptr);
    }

    meta::MetadataLayout layout;
    mem::AddressMap map;
    meta::CommonCounterTable common;
    MockRouter router;
};

} // namespace

TEST_F(MeeEngineTest, InsecureModeIsSilent)
{
    MeeParams p;
    p.secure = false;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;
    EXPECT_EQ(mee.onRead(0, 0, 100), 100u);
    mee.onWrite(0, 0, 100);
    EXPECT_TRUE(router.txns.empty());
}

TEST_F(MeeEngineTest, PssmReadFetchesCounterAndMac)
{
    MeeParams p; // PSSM defaults
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;
    Cycle ready = mee.onRead(0, 0, 100);
    EXPECT_GT(ready, 100u) << "counter fetch is on the critical path";
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Counter), 32u);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Mac), 32u);
    // Counter missed in the MDC: the BMT path is verified.
    EXPECT_GT(router.bytesOf(mem::TrafficClass::Bmt), 0u);
    for (const auto &t : router.txns)
        EXPECT_EQ(t.target, 0u) << "local addressing stays in-partition";
}

TEST_F(MeeEngineTest, SecondReadHitsMetadataCaches)
{
    auto mee_ptr = makeEngine(MeeParams{});
    MeeEngine &mee = *mee_ptr;
    mee.onRead(0, 0, 100);
    std::size_t after_first = router.txns.size();
    // Neighbouring block shares counter sector, MAC sector, BMT path.
    Cycle ready = mee.onRead(128, 128, 200);
    EXPECT_EQ(router.txns.size(), after_first);
    EXPECT_EQ(ready, 200 + 2u) << "MDC hit latency";
}

TEST_F(MeeEngineTest, PhysicalAddressingCrossesPartitions)
{
    MeeParams p;
    p.localMetadataAddressing = false;
    p.sectoredMetadata = false;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // Several reads spread over the space: metadata physical addresses
    // map across partitions, producing remote transactions.
    bool remote = false;
    for (int i = 0; i < 8; ++i)
        mee.onRead(i * 64 * 1024, i * 64 * 1024, 100);
    for (const auto &t : router.txns) {
        EXPECT_EQ(t.bytes % 128, 0u) << "unsectored metadata moves lines";
        remote |= (t.target != 0);
    }
    EXPECT_TRUE(remote);
}

TEST_F(MeeEngineTest, ReadOnlyRegionSkipsCounterAndBmt)
{
    MeeParams p;
    p.readOnlyOpt = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;
    mee.hostCopy(0, 1 << 20);

    mee.onRead(0, 0, 100);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Counter), 0u);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Bmt), 0u);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Mac), 32u)
        << "integrity still needs the MAC";
    EXPECT_EQ(mee.sharedCounterReads(), 1);
}

TEST_F(MeeEngineTest, WriteTransitionPropagatesCounters)
{
    MeeParams p;
    p.readOnlyOpt = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;
    mee.hostCopy(0, 1 << 20);

    mee.onWrite(0, 0, 100);
    EXPECT_EQ(mee.roTransitions(), 1);
    // Subsequent reads in the region use per-block counters again.
    router.txns.clear();
    mee.onRead(256, 256, 200);
    EXPECT_EQ(mee.sharedCounterReads(), 0);
}

TEST_F(MeeEngineTest, CommonCountersCoverUniformTraffic)
{
    MeeParams p;
    p.commonCounters = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    mee.onRead(0, 0, 100);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Counter), 0u);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Bmt), 0u);
    EXPECT_EQ(mee.commonCtrHits(), 1);

    // Writes always persist their counters off-chip and devolve the
    // region for subsequent reads.
    mee.onWrite(128, 128, 110);
    EXPECT_GT(router.bytesOf(mem::TrafficClass::Counter), 0u);
    mee.onRead(256, 256, 120);
    EXPECT_EQ(mee.commonCtrHits(), 1)
        << "the devolved region no longer counts as common";

    // Untouched regions stay covered.
    router.txns.clear();
    mee.onRead(1 << 20, 1 << 20, 130);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Counter), 0u);
    EXPECT_EQ(mee.commonCtrHits(), 2);
}

TEST_F(MeeEngineTest, DualGranularityMacUsesChunkMacWhenStreaming)
{
    MeeParams p;
    p.dualGranularityMac = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    mee.onRead(0, 0, 100);
    EXPECT_EQ(mee.chunkMacAccesses(), 1);
    EXPECT_EQ(mee.blockMacAccesses(), 0);
}

TEST_F(MeeEngineTest, DetectedRandomChunkSwitchesToBlockMacs)
{
    MeeParams p;
    p.dualGranularityMac = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // Sparse touches then a long gap: the MAT times out, detects
    // random, and the predictor flips.
    mee.onRead(0, 0, 100);
    mee.onRead(17 * 128, 17 * 128, 101);
    mee.onRead(1 << 20, 1 << 20, 50000); // triggers expiry
    router.txns.clear();

    mee.onRead(5 * 128, 5 * 128, 50001);
    EXPECT_GT(mee.blockMacAccesses(), 0);
}

TEST_F(MeeEngineTest, StreamMispredictedAsRandomChargesRefetch)
{
    MeeParams p;
    p.dualGranularityMac = true;
    p.readOnlyOpt = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;
    mee.hostCopy(0, 1 << 20); // read-only

    // Flip chunk 0 to "random" via a timed-out sparse phase.
    mee.onRead(0, 0, 100);
    mee.onRead(17 * 128, 17 * 128, 101);
    mee.onRead(2 << 20, 2 << 20, 50000);
    router.txns.clear();

    // Now stream the whole chunk (twice: re-monitoring of random-
    // classified chunks is paced, so the MAT attaches mid-way through
    // the first pass and completes coverage on the second). Detection
    // says streaming while the prediction said random — Table III
    // row 5 (read-only): zero overhead, and the predictor flips back.
    for (int pass = 0; pass < 2; ++pass)
        for (int s = 0; s < 128; ++s)
            mee.onRead(static_cast<LocalAddr>(s) * 32,
                       static_cast<Addr>(s) * 32,
                       50100 + static_cast<Cycle>(pass * 128 + s));
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Extra), 0u);
    EXPECT_TRUE(mee.streamingDetector().predictStreaming(0));
}

TEST_F(MeeEngineTest, NonReadOnlyMispredictionRefetchesChunkMac)
{
    MeeParams p;
    p.dualGranularityMac = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // Flip chunk 0 to random.
    mee.onRead(0, 0, 100);
    mee.onRead(17 * 128, 17 * 128, 101);
    mee.onRead(2 << 20, 2 << 20, 50000);
    router.txns.clear();

    // Stream it twice (paced re-monitoring attaches mid-pass):
    // random mispredicted in the other direction — Table III row 6:
    // re-fetch the chunk-level MAC.
    for (int pass = 0; pass < 2; ++pass)
        for (int s = 0; s < 128; ++s)
            mee.onRead(static_cast<LocalAddr>(s) * 32,
                       static_cast<Addr>(s) * 32,
                       50100 + static_cast<Cycle>(pass * 128 + s));
    EXPECT_GT(router.bytesOf(mem::TrafficClass::Extra), 0u);
}

TEST_F(MeeEngineTest, WriteStreamMispredictedAsRandomRefetchesData)
{
    MeeParams p;
    p.dualGranularityMac = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // Writes under the (default) streaming prediction, but sparse:
    // detection=random with the write flag set — Table IV row 2.
    mee.onWrite(0, 0, 100);
    mee.onWrite(17 * 128, 17 * 128, 101);
    mee.onWrite(2 << 20, 2 << 20, 50000); // expiry
    EXPECT_GT(router.bytesOf(mem::TrafficClass::Extra), 0u);
}

TEST_F(MeeEngineTest, DualMacStaleFallback)
{
    MeeParams p;
    p.dualGranularityMac = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // Stream-write the whole of chunk 0: detection confirms
    // streaming, the chunk MAC is updated and the stored block MACs
    // are stale (marked not dirty).
    for (int b = 0; b < 32; ++b)
        mee.onWrite(static_cast<LocalAddr>(b) * 128, 0,
                    100 + static_cast<Cycle>(b));
    ASSERT_TRUE(mee.streamingDetector().predictStreaming(0));

    // Now chunk 2048 (which shares chunk 0's predictor entry) is
    // detected random via a sparse timed-out phase, flipping the
    // shared bit without any rebuild of chunk 0's block MACs.
    mee.onRead(2048ull * 4096, 0, 300);
    mee.onRead(2048ull * 4096 + 5 * 128, 0, 301);
    mee.onRead(4 << 20, 4 << 20, 60000); // expiry trigger
    ASSERT_FALSE(mee.streamingDetector().predictStreaming(0))
        << "alias flipped chunk 0's prediction";

    router.txns.clear();
    // Reading a block of chunk 0 now uses the block MAC, which is
    // stale: the engine falls back to the chunk MAC (remedy #2).
    mee.onRead(5 * 128, 5 * 128, 60100);
    EXPECT_EQ(mee.dualMacFallbacks(), 1);
}

TEST_F(MeeEngineTest, VictimCachePathUsedWhenActive)
{
    MeeParams p;
    p.victimL2 = true;
    MockVictim victim;
    auto mee_ptr = makeEngine(p, &victim);
    MeeEngine &mee = *mee_ptr;

    // Inactive: plain DRAM fetch, no probes.
    mee.onRead(0, 0, 100);
    EXPECT_TRUE(victim.probes.empty());

    victim.active = true;
    victim.hit = true;
    router.txns.clear();
    // A far-away block (fresh metadata lines) now probes the L2.
    mee.onRead(4 << 20, 4 << 20, 200);
    EXPECT_FALSE(victim.probes.empty());
    EXPECT_EQ(mee.victimHits(), victim.probes.size());
    EXPECT_TRUE(router.txns.empty())
        << "victim hits satisfy the fetch without DRAM";
}

TEST_F(MeeEngineTest, EvictionsGoToVictimWhenActive)
{
    MeeParams p;
    p.victimL2 = true;
    MockVictim victim;
    victim.active = true;
    auto mee_ptr = makeEngine(p, &victim);
    MeeEngine &mee = *mee_ptr;

    // Dirty lots of counter lines to force dirty MDC evictions.
    for (int i = 0; i < 1500; ++i)
        mee.onWrite(static_cast<LocalAddr>(i) * 8192, 0,
                    100 + static_cast<Cycle>(i));
    EXPECT_FALSE(victim.inserts.empty());
    EXPECT_EQ(mee.victimInserts(), victim.inserts.size());
}

TEST_F(MeeEngineTest, PredictionAccuracyAttribution)
{
    MeeParams p;
    p.readOnlyOpt = true;
    p.dualGranularityMac = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    detect::AccessProfile profile(1);
    // Ground truth: partition-0 region 0 read-only, chunk 0 streaming.
    for (int s = 0; s < 128; ++s)
        profile.recordAccess(0, static_cast<LocalAddr>(s) * 32, false,
                             static_cast<Cycle>(s));
    profile.finalize(10000);
    mee.setProfile(&profile);

    mee.hostCopy(0, 16 * 1024);
    mee.onRead(0, 0, 100);
    const auto &ps = mee.predictionStats();
    EXPECT_EQ(ps.roCorrect.value(), 1);
    EXPECT_EQ(ps.strCorrect.value(), 1);

    // A region never host-copied but truly read-only: MP_Init.
    profile.recordAccess(0, 64 * 1024, false, 20000);
    mee.onRead(64 * 1024, 64 * 1024, 20001);
    EXPECT_EQ(ps.roMpInit.value(), 1);
}

TEST_F(MeeEngineTest, StaticSpaceHintsServeTextureFromSharedCounter)
{
    MeeParams p;
    p.readOnlyOpt = true;
    p.staticSpaceHints = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // No host copy marked this region, but the access is to texture
    // memory: Table I says C+I only.
    mee.onRead(0, 0, 100, MemSpace::Texture);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Counter), 0u);
    EXPECT_EQ(router.bytesOf(mem::TrafficClass::Bmt), 0u);
    EXPECT_EQ(mee.sharedCounterReads(), 1);

    // Global memory without a marking still uses per-block counters.
    mee.onRead(64 * 1024, 64 * 1024, 200, MemSpace::Global);
    EXPECT_GT(router.bytesOf(mem::TrafficClass::Counter), 0u);
}

TEST_F(MeeEngineTest, ProgrammingModelHintMarksWithoutCopy)
{
    MeeParams p;
    p.readOnlyOpt = true;
    p.programmingModelHints = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    mee.hostCopy(0, 16 * 1024, /*declared_read_only=*/true);
    mee.onRead(0, 0, 100);
    EXPECT_EQ(mee.sharedCounterReads(), 1);
}

TEST_F(MeeEngineTest, LazyBmtPropagationOnCounterEviction)
{
    MeeParams p; // PSSM
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // Dirty enough distinct counter lines to force dirty evictions
    // (2 KB counter cache = 16 lines); each eviction must update the
    // evicted leaf's BMT parent entry.
    for (int i = 0; i < 64; ++i)
        mee.onWrite(static_cast<LocalAddr>(i) * 32 * 1024, 0,
                    100 + static_cast<Cycle>(i));
    EXPECT_GT(router.bytesOf(mem::TrafficClass::Bmt), 0u)
        << "counter evictions must reach the BMT";
}

TEST_F(MeeEngineTest, CombinedReadOnlyAndCommonCounters)
{
    // SHM_cctr: read-only regions take the shared counter; untouched
    // not-read-only regions fall back to common counters; written
    // regions use per-block counters.
    MeeParams p;
    p.readOnlyOpt = true;
    p.dualGranularityMac = true;
    p.commonCounters = true;
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    mee.hostCopy(0, 16 * 1024);

    mee.onRead(0, 0, 100); // read-only -> shared counter
    EXPECT_EQ(mee.sharedCounterReads(), 1);
    EXPECT_EQ(mee.commonCtrHits(), 0);

    mee.onRead(64 * 1024, 64 * 1024, 110); // unmarked -> common
    EXPECT_EQ(mee.commonCtrHits(), 1);

    mee.onWrite(64 * 1024, 64 * 1024, 120); // devolves the region
    router.txns.clear();
    mee.onRead(64 * 1024 + 128, 64 * 1024 + 128, 130);
    EXPECT_EQ(mee.commonCtrHits(), 1) << "devolved region not covered";
}

TEST_F(MeeEngineTest, LazyBmtPropagationClimbsOnNodeEviction)
{
    // Evicting dirty BMT level-0 entries must RMW their level-1
    // parents — spread counter writes over enough distinct leaves
    // that level-0 node entries thrash the 2 KB BMT cache.
    MeeParams p; // PSSM
    auto mee_ptr = makeEngine(p);
    MeeEngine &mee = *mee_ptr;

    // 16 MB of data = 2048 counter blocks = 128 level-0 nodes; the
    // BMT cache holds 16 lines.
    for (std::uint64_t i = 0; i < 2048; i += 4)
        mee.onWrite(i * 8192 % (16 << 20), 0,
                    100 + static_cast<Cycle>(i));
    // Drive evictions by more counter traffic.
    for (std::uint64_t i = 1; i < 2048; i += 4)
        mee.onWrite(i * 8192 % (16 << 20), 0,
                    10000 + static_cast<Cycle>(i));

    std::uint64_t bmt_reads = 0, bmt_writes = 0;
    for (const auto &t : router.txns) {
        if (t.cls == mem::TrafficClass::Bmt) {
            (t.type == mem::AccessType::Read ? bmt_reads : bmt_writes)++;
        }
    }
    EXPECT_GT(bmt_reads, 0u) << "parent RMW fetches";
    EXPECT_GT(bmt_writes, 0u) << "dirty node write-backs";
}

TEST_F(MeeEngineTest, PhysicalAddressingSchemesNeverUseTheVictim)
{
    MeeParams p;
    p.localMetadataAddressing = false;
    p.sectoredMetadata = false;
    p.victimL2 = false; // Table VIII never combines them
    MockVictim victim;
    victim.active = true;
    victim.hit = true;
    auto mee_ptr = makeEngine(p, &victim);
    MeeEngine &mee = *mee_ptr;
    mee.onRead(0, 0, 100);
    EXPECT_TRUE(victim.probes.empty());
    EXPECT_TRUE(victim.inserts.empty());
}

TEST_F(MeeEngineTest, MacWidthShrinksMacFootprint)
{
    // 4 B MACs double the blocks per MAC sector, halving cold-miss
    // MAC traffic on a streaming sweep.
    auto run_with = [&](std::uint32_t mac_bytes) {
        meta::LayoutParams lp;
        lp.dataBytes = 16 << 20;
        lp.macBytes = mac_bytes;
        meta::MetadataLayout narrow(lp);
        MeeParams p;
        p.macBytes = mac_bytes;
        MockRouter local_router;
        MeeEngine mee(p, 0, &narrow, &local_router, nullptr, &map,
                      nullptr);
        for (int i = 0; i < 512; ++i)
            mee.onRead(static_cast<LocalAddr>(i) * 128,
                       static_cast<Addr>(i) * 128,
                       100 + static_cast<Cycle>(i));
        return local_router.bytesOf(mem::TrafficClass::Mac);
    };
    std::uint64_t wide = run_with(8);
    std::uint64_t narrow = run_with(4);
    EXPECT_LT(narrow, wide);
    EXPECT_NEAR(static_cast<double>(narrow) / wide, 0.5, 0.2);
}
