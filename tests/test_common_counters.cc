/**
 * @file
 * Common-counter table tests (Common_ctr / *_cctr schemes).
 */

#include <gtest/gtest.h>

#include "meta/counters.hh"

using namespace shmgpu;
using namespace shmgpu::meta;

namespace
{

class CommonCounterTest : public ::testing::Test
{
  protected:
    CommonCounterTest() : layout(makeParams()), table(layout) {}

    static LayoutParams
    makeParams()
    {
        LayoutParams p;
        p.dataBytes = 1 << 20;
        return p;
    }

    MetadataLayout layout;
    CommonCounterTable table;
};

} // namespace

TEST_F(CommonCounterTest, InitiallyCommonEverywhere)
{
    EXPECT_TRUE(table.isCommon(0));
    EXPECT_TRUE(table.isCommon(512 * 1024));
    EXPECT_DOUBLE_EQ(table.commonFraction(), 1.0);
}

TEST_F(CommonCounterTest, WritesAreNeverCoveredAndDevolve)
{
    // Writes persist their counters; the touched region devolves.
    EXPECT_FALSE(table.recordWrite(0));
    EXPECT_FALSE(table.isCommon(0));
    // Only that 8 KB region devolves.
    EXPECT_TRUE(table.isCommon(8 * 1024));
}

TEST_F(CommonCounterTest, DevolvedRegionStaysPerBlock)
{
    table.recordWrite(0);
    table.kernelBoundary();
    EXPECT_FALSE(table.isCommon(0));
    EXPECT_FALSE(table.recordWrite(128));
}

TEST_F(CommonCounterTest, ReadsOfUntouchedRegionsStayCovered)
{
    table.recordWrite(0);
    EXPECT_TRUE(table.isCommon(512 * 1024));
}

TEST_F(CommonCounterTest, CommonFractionTracksDevolution)
{
    table.recordWrite(0);          // region 0 devolves
    table.recordWrite(8 * 1024);   // region 1 devolves
    EXPECT_NEAR(table.commonFraction(), 0.0, 1e-9);
}
