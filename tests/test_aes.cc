/**
 * @file
 * AES-128 known-answer and property tests.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "crypto/aes128.hh"

using namespace shmgpu::crypto;

namespace
{

Block16
blockFromHex(const char *hex)
{
    Block16 out{};
    for (int i = 0; i < 16; ++i) {
        auto nibble = [&](char c) -> std::uint8_t {
            if (c >= '0' && c <= '9')
                return static_cast<std::uint8_t>(c - '0');
            return static_cast<std::uint8_t>(c - 'a' + 10);
        };
        out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                           nibble(hex[2 * i + 1]));
    }
    return out;
}

} // namespace

// FIPS-197 Appendix B example.
TEST(Aes128, Fips197AppendixB)
{
    Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Block16 ct = aes.encrypt(blockFromHex("3243f6a8885a308d313198a2e0370734"));
    EXPECT_EQ(ct, blockFromHex("3925841d02dc09fbdc118597196a0b32"));
}

// FIPS-197 Appendix C.1 (AES-128) known answer.
TEST(Aes128, Fips197AppendixC1)
{
    Aes128 aes(blockFromHex("000102030405060708090a0b0c0d0e0f"));
    Block16 ct = aes.encrypt(blockFromHex("00112233445566778899aabbccddeeff"));
    EXPECT_EQ(ct, blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

// NIST SP 800-38A ECB-AES128 vectors (first two blocks).
TEST(Aes128, Sp80038aEcbVectors)
{
    Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    EXPECT_EQ(aes.encrypt(
                  blockFromHex("6bc1bee22e409f96e93d7e117393172a")),
              blockFromHex("3ad77bb40d7a3660a89ecaf32466ef97"));
    EXPECT_EQ(aes.encrypt(
                  blockFromHex("ae2d8a571e03ac9c9eb76fac45af8e51")),
              blockFromHex("f5d3d58503b9699de785895a96fdbaaf"));
}

TEST(Aes128, EncryptionIsDeterministic)
{
    Aes128 aes(blockFromHex("000102030405060708090a0b0c0d0e0f"));
    Block16 pt = blockFromHex("00112233445566778899aabbccddeeff");
    EXPECT_EQ(aes.encrypt(pt), aes.encrypt(pt));
}

TEST(Aes128, DifferentKeysGiveDifferentCiphertext)
{
    Block16 pt{};
    Aes128 a(blockFromHex("00000000000000000000000000000000"));
    Aes128 b(blockFromHex("00000000000000000000000000000001"));
    EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

// Avalanche property: flipping one plaintext bit changes roughly half
// the ciphertext bits.
TEST(Aes128, AvalancheProperty)
{
    shmgpu::Rng rng(42);
    Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));

    for (int trial = 0; trial < 32; ++trial) {
        Block16 pt;
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.next());
        Block16 pt2 = pt;
        unsigned bit = static_cast<unsigned>(rng.below(128));
        pt2[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));

        Block16 c1 = aes.encrypt(pt);
        Block16 c2 = aes.encrypt(pt2);
        int diff = 0;
        for (int i = 0; i < 16; ++i)
            diff += std::popcount(
                static_cast<unsigned>(c1[i] ^ c2[i]));
        // 128-bit block: expect ~64 differing bits; allow wide margin.
        EXPECT_GT(diff, 30);
        EXPECT_LT(diff, 98);
    }
}
