/**
 * @file
 * Workload model and trace-generation tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/benchmarks.hh"
#include "workload/trace.hh"

using namespace shmgpu;
using namespace shmgpu::workload;

TEST(WorkloadSpecs, AllSixteenPaperWorkloadsExist)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 16u);
    const char *expected[] = {
        "atax", "backprop", "bfs",    "b+tree",       "cfd",  "fdtd2d",
        "kmeans", "mvt",    "histo",  "lbm",          "mri-gridding",
        "sad",  "stencil",  "srad",   "srad_v2",      "streamcluster"};
    for (const char *name : expected) {
        const WorkloadSpec &w = findWorkload(name);
        EXPECT_EQ(w.name, name);
        EXPECT_FALSE(w.buffers.empty()) << name;
        EXPECT_FALSE(w.kernels.empty()) << name;
        for (const auto &k : w.kernels) {
            EXPECT_FALSE(k.streams.empty()) << name;
            for (const auto &s : k.streams)
                EXPECT_LT(s.buffer, w.buffers.size()) << name;
        }
    }
}

TEST(WorkloadSpecs, UnknownWorkloadIsFatal)
{
    EXPECT_DEATH(findWorkload("nope"), "unknown workload");
}

TEST(WorkloadSpecs, FirstKernelInitializesInputs)
{
    // Every paper workload copies at least one input before kernel 0,
    // which is what seeds the read-only detector.
    for (const auto &w : allWorkloads())
        EXPECT_FALSE(w.kernels[0].preCopies.empty()) << w.name;
}

TEST(WorkloadSpecs, BufferLayoutIsAlignedAndDisjoint)
{
    const WorkloadSpec &w = findWorkload("lbm");
    auto bases = layoutBuffers(w);
    ASSERT_EQ(bases.size(), w.buffers.size());
    for (std::size_t i = 0; i < bases.size(); ++i) {
        EXPECT_EQ(bases[i] % (64 * 1024), 0u);
        if (i > 0) {
            EXPECT_GE(bases[i], bases[i - 1] + w.buffers[i - 1].bytes);
        }
    }
    EXPECT_EQ(footprintBytes(w), bases.back() + w.buffers.back().bytes);
}

TEST(WorkloadSpecs, FootprintsFitProtectedSpace)
{
    for (const auto &w : allWorkloads())
        EXPECT_LT(footprintBytes(w), 3ull << 30) << w.name;
}

TEST(KernelTrace, DeterministicAcrossRuns)
{
    WorkloadSpec w = makeMixedMicro();
    auto bases = layoutBuffers(w);
    KernelTrace a(w, bases, 0, 4);
    KernelTrace b(w, bases, 0, 4);
    TraceOp oa, ob;
    for (int i = 0; i < 500; ++i) {
        bool ra = a.next(1, oa);
        bool rb = b.next(1, ob);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.type, ob.type);
        EXPECT_EQ(oa.computeInstrs, ob.computeInstrs);
    }
}

TEST(KernelTrace, StreamingSweepsDenselyInOrder)
{
    WorkloadSpec w = makeStreamingMicro(1 << 20, 64);
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 4);

    // Round-robin the SMs like the simulator does; collect the read
    // stream's addresses.
    std::vector<Addr> reads;
    bool live = true;
    while (live) {
        live = false;
        for (SmId sm = 0; sm < 4; ++sm) {
            TraceOp op;
            if (t.next(sm, op)) {
                live = true;
                if (op.type == mem::AccessType::Read)
                    reads.push_back(op.addr);
            }
        }
    }
    ASSERT_EQ(reads.size(), 4u * 64u);
    // The global ticket makes the union exactly sequential sectors.
    std::set<Addr> unique(reads.begin(), reads.end());
    EXPECT_EQ(unique.size(), reads.size());
    EXPECT_EQ(*unique.begin(), bases[0]);
    EXPECT_EQ(*unique.rbegin(), bases[0] + (reads.size() - 1) * 32);
}

TEST(KernelTrace, RandomPatternSpreads)
{
    WorkloadSpec w = makeRandomMicro(1 << 20, 512);
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 2);

    std::set<Addr> addrs;
    TraceOp op;
    while (t.next(0, op))
        if (op.type == mem::AccessType::Read)
            addrs.insert(op.addr);
    // 512 random picks from 32K sectors: expect almost no repeats.
    EXPECT_GT(addrs.size(), 480u);
}

TEST(KernelTrace, ProbabilisticStreamsThin)
{
    WorkloadSpec w = makeStreamingMicro(1 << 20, 1000);
    w.kernels[0].streams[1].prob = 0.25; // thin the write stream
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 1);

    int reads = 0, writes = 0;
    TraceOp op;
    while (t.next(0, op))
        (op.type == mem::AccessType::Read ? reads : writes)++;
    EXPECT_EQ(reads, 1000);
    EXPECT_NEAR(writes, 250, 60);
}

TEST(KernelTrace, SpacePropagates)
{
    const WorkloadSpec &w = findWorkload("kmeans");
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 2);
    bool saw_texture = false, saw_constant = false;
    TraceOp op;
    for (int i = 0; i < 2000 && t.next(0, op); ++i) {
        saw_texture |= (op.space == MemSpace::Texture);
        saw_constant |= (op.space == MemSpace::Constant);
    }
    EXPECT_TRUE(saw_texture);
    EXPECT_TRUE(saw_constant);
}

TEST(KernelTrace, DrainsExactly)
{
    WorkloadSpec w = makeStreamingMicro(1 << 20, 16);
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 2);
    EXPECT_FALSE(t.done());
    TraceOp op;
    int count0 = 0;
    while (t.next(0, op))
        ++count0;
    EXPECT_EQ(count0, 32); // 16 iterations x 2 streams
    EXPECT_FALSE(t.done()) << "SM 1 still live";
    while (t.next(1, op)) {
    }
    EXPECT_TRUE(t.done());
    EXPECT_FALSE(t.next(0, op));
}

TEST(KernelTrace, HotSetConcentrates)
{
    WorkloadSpec w;
    w.name = "hot";
    w.seed = 3;
    w.buffers = {{"b", 1 << 20, MemSpace::Global}};
    w.kernels = {{"k", 4000, 0,
                  {{0, Pattern::RandomHot, false, 1.0, 0.05, 0.8}},
                  {}}};
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 1);

    std::uint64_t hot_bytes = (1 << 20) / 20; // 5%
    int in_hot = 0, total = 0;
    TraceOp op;
    while (t.next(0, op)) {
        ++total;
        in_hot += (op.addr - bases[0]) < hot_bytes;
    }
    EXPECT_EQ(total, 4000);
    // 80% targeted + ~5% of the uniform tail.
    EXPECT_NEAR(in_hot / 4000.0, 0.81, 0.05);
}

TEST(KernelTrace, StridedPatternSkipsBlocks)
{
    WorkloadSpec w;
    w.name = "strided";
    w.seed = 4;
    w.buffers = {{"m", 1 << 20, MemSpace::Global}};
    w.kernels = {{"col_walk", 512, 0,
                  {{0, Pattern::Strided, false, 1.0, 0, 0, 16}},
                  {}}};
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 1);

    TraceOp op, prev;
    ASSERT_TRUE(t.next(0, prev));
    int strided_steps = 0, total = 0;
    while (t.next(0, op)) {
        ++total;
        strided_steps += (op.addr == prev.addr + 16 * 32);
        prev = op;
    }
    // Almost every step advances by the stride (one wrap per sweep).
    EXPECT_GT(strided_steps, total - 5);
}

TEST(KernelTrace, StridedSweepsCoverEverythingEventually)
{
    WorkloadSpec w;
    w.name = "strided2";
    w.seed = 5;
    w.buffers = {{"m", 64 * 1024, MemSpace::Global}};
    // 2048 sectors, stride 16: 16 sweeps x 128 steps cover all.
    w.kernels = {{"cover", 2048, 0,
                  {{0, Pattern::Strided, false, 1.0, 0, 0, 16}},
                  {}}};
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 1);

    std::set<Addr> seen;
    TraceOp op;
    while (t.next(0, op))
        seen.insert(op.addr);
    EXPECT_EQ(seen.size(), 2048u);
}

TEST(KernelTrace, ZipfConcentratesOnTheLowHead)
{
    WorkloadSpec w;
    w.name = "zipf";
    w.seed = 6;
    w.buffers = {{"b", 1 << 20, MemSpace::Global}};
    w.kernels = {{"k", 8000, 0,
                  {{0, Pattern::Zipf, false, 1.0, 0, 0, 0, 1.2}},
                  {}}};
    auto bases = layoutBuffers(w);
    KernelTrace t(w, bases, 0, 1);

    // alpha=1.2 puts most of the mass on the first few percent of
    // sectors; a uniform stream would leave ~2% there.
    std::uint64_t head_bytes = (1 << 20) / 50;
    int in_head = 0, total = 0;
    TraceOp op;
    while (t.next(0, op)) {
        ++total;
        in_head += (op.addr - bases[0]) < head_bytes;
    }
    EXPECT_EQ(total, 8000);
    EXPECT_GT(in_head / 8000.0, 0.5);
}

TEST(KernelTrace, ZipfSkewGrowsWithAlpha)
{
    auto head_fraction = [](double alpha) {
        WorkloadSpec w;
        w.name = "zipf";
        w.seed = 7;
        w.buffers = {{"b", 1 << 20, MemSpace::Global}};
        w.kernels = {{"k", 8000, 0,
                      {{0, Pattern::Zipf, false, 1.0, 0, 0, 0, alpha}},
                      {}}};
        auto bases = layoutBuffers(w);
        KernelTrace t(w, bases, 0, 1);
        std::uint64_t head_bytes = (1 << 20) / 10;
        int in_head = 0;
        TraceOp op;
        while (t.next(0, op))
            in_head += (op.addr - bases[0]) < head_bytes;
        return in_head / 8000.0;
    };
    double low = head_fraction(0.2);
    double mid = head_fraction(0.8);
    double high = head_fraction(1.5);
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
    // Near-uniform at the bottom of the knob, near-total at the top.
    EXPECT_LT(low, 0.35);
    EXPECT_GT(high, 0.85);
}

TEST(KernelTrace, ZipfIsDeterministicPerSeed)
{
    auto spec = makeZipfSpec(1 << 20, 0.9, /*seed=*/21);
    auto bases = layoutBuffers(spec);
    KernelTrace a(spec, bases, 0, 1);
    KernelTrace b(spec, bases, 0, 1);
    TraceOp oa, ob;
    while (true) {
        bool more_a = a.next(0, oa);
        bool more_b = b.next(0, ob);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        EXPECT_EQ(oa.addr, ob.addr);
    }
}

TEST(WorkloadSpecs, ZipfSpecsAreValidAndContentDistinct)
{
    auto a = makeZipfSpec(1 << 20, 0.5);
    auto b = makeZipfSpec(1 << 20, 0.9);
    auto c = makeZipfSpec(1 << 21, 0.5);
    validateSpec(a);
    validateSpec(b);
    validateSpec(c);
    // alpha and footprint both reach contentHash (and so the sweep
    // result-cache key); the names differ too, but the hash must not
    // rely on that.
    EXPECT_NE(contentHash(a), contentHash(b));
    EXPECT_NE(contentHash(a), contentHash(c));
    EXPECT_EQ(contentHash(a), contentHash(makeZipfSpec(1 << 20, 0.5)));
}

TEST(WorkloadValidation, AcceptsAllBuiltins)
{
    for (const auto &w : allWorkloads())
        validateSpec(w); // fatal on violation
    validateSpec(makeStreamingMicro());
    validateSpec(makeRandomMicro());
    validateSpec(makeMixedMicro());
    validateSpec(makeMultiKernelMicro());
    validateSpec(makeZipfSpec(1 << 20, 0.8));
}

TEST(WorkloadValidation, RejectsBadSpecs)
{
    WorkloadSpec w = makeStreamingMicro();
    w.kernels[0].streams[0].buffer = 99;
    EXPECT_DEATH(validateSpec(w), "references buffer 99");

    w = makeStreamingMicro();
    w.kernels[0].streams[0].prob = 0.0;
    EXPECT_DEATH(validateSpec(w), "probability");

    w = makeStreamingMicro();
    w.buffers.clear();
    EXPECT_DEATH(validateSpec(w), "no buffers");

    w = makeStreamingMicro();
    w.kernels[0].streams.clear();
    EXPECT_DEATH(validateSpec(w), "no streams");

    w = makeZipfSpec(1 << 20, 0.8);
    w.kernels[0].streams[0].zipfAlpha = -0.5;
    EXPECT_DEATH(validateSpec(w), "zipf");
}
