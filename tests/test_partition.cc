/**
 * @file
 * Memory-partition integration tests: the L2 + MEE + GDDR pipeline of
 * one partition, driven directly.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "gpu/partition.hh"
#include "schemes/schemes.hh"

using namespace shmgpu;
using namespace shmgpu::gpu;

namespace
{

/** Routes metadata back into the partition's own channel. */
class LoopbackRouter : public mee::DramRouter
{
  public:
    Cycle
    enqueueMeta(PartitionId, Addr bank_addr, std::uint32_t bytes,
                mem::AccessType type, mem::TrafficClass cls,
                Cycle now) override
    {
        shm_assert(target != nullptr, "router used before wiring");
        return target->channel()
            .enqueue(now, bank_addr, bytes, type, cls)
            .complete;
    }

    Partition *target = nullptr;
};

class PartitionTest : public ::testing::Test
{
  protected:
    void
    make(schemes::Scheme scheme)
    {
        gp.protectedBytesPerPartition = 32 << 20;
        mee::MeeParams mp = schemes::makeMeeParams(scheme);
        meta::LayoutParams lp;
        lp.dataBytes = gp.protectedBytesPerPartition;
        lp.chunkBytes = mp.streamDetector.chunkBytes;
        layout = std::make_unique<meta::MetadataLayout>(lp);
        map = std::make_unique<mem::AddressMap>(gp.numPartitions, 256);
        part = std::make_unique<Partition>(gp, mp, 0, layout.get(),
                                           &router, map.get(), nullptr);
        router.target = part.get();
    }

    GpuParams gp;
    LoopbackRouter router;
    std::unique_ptr<meta::MetadataLayout> layout;
    std::unique_ptr<mem::AddressMap> map;
    std::unique_ptr<Partition> part;
};

} // namespace

TEST_F(PartitionTest, BaselineReadMovesOnlyData)
{
    make(schemes::Scheme::Baseline);
    Cycle done = part->read(0x1000, 0x1000, 100);
    EXPECT_GT(done, 100u);
    EXPECT_GT(part->channel().bytesMoved(mem::TrafficClass::Data), 0u);
    EXPECT_EQ(part->channel().totalBytes(),
              part->channel().bytesMoved(mem::TrafficClass::Data));
}

TEST_F(PartitionTest, SecureReadAddsAesLatencyAndMetadata)
{
    make(schemes::Scheme::Baseline);
    Cycle base_done = part->read(0x1000, 0x1000, 100);

    make(schemes::Scheme::Pssm);
    Cycle secure_done = part->read(0x1000, 0x1000, 100);
    EXPECT_GE(secure_done, base_done + 40) << "AES latency applies";
    EXPECT_GT(part->channel().bytesMoved(mem::TrafficClass::Counter), 0u);
    EXPECT_GT(part->channel().bytesMoved(mem::TrafficClass::Mac), 0u);
}

TEST_F(PartitionTest, L2HitNeedsNoDram)
{
    make(schemes::Scheme::Pssm);
    part->read(0x1000, 0x1000, 100);
    std::uint64_t bytes = part->channel().totalBytes();
    Cycle done = part->read(0x1000, 0x1000, 1000);
    EXPECT_EQ(part->channel().totalBytes(), bytes);
    EXPECT_EQ(done, 1000 + gp.l2HitLatency);
}

TEST_F(PartitionTest, WritebacksReachTheMee)
{
    GpuParams small = gp;
    make(schemes::Scheme::Pssm);
    (void)small;
    // Fill well past the L2 to force dirty evictions.
    std::uint64_t l2_lines =
        2 * gp.l2BankBytes / 128; // two banks
    for (std::uint64_t i = 0; i < l2_lines * 3; ++i)
        part->write(i * 128, i * 128, 100 + i);
    EXPECT_GT(part->channel().bytesMoved(mem::TrafficClass::Counter), 0u)
        << "evicted dirty data triggered counter RMWs";
    double writes = part->mee().counterCache().accesses();
    EXPECT_GT(writes, 0);
}

TEST_F(PartitionTest, HostCopyEnablesSharedCounterReads)
{
    make(schemes::Scheme::Shm);
    part->hostCopy(0, 1 << 20);
    part->read(0x2000, 0x2000, 100);
    EXPECT_EQ(part->mee().sharedCounterReads(), 1);
    EXPECT_EQ(part->channel().bytesMoved(mem::TrafficClass::Counter), 0u);
}

TEST_F(PartitionTest, MetadataVictimLinesDoNotReenterTheMee)
{
    make(schemes::Scheme::Shm);
    // Inserting a metadata line (address above the protected space)
    // that later evicts must go to DRAM as metadata, not recurse into
    // onWrite.
    Addr meta_addr = gp.protectedBytesPerPartition + 4096;
    part->victimInsert(meta_addr, 0xF, 0xF, mem::TrafficClass::Mac, 100);
    EXPECT_TRUE(part->victimProbe(meta_addr));
    double mee_writes_before = part->mee().counterCache().accesses();
    // Evict it by flooding the same set region with data.
    for (int i = 0; i < 64; ++i)
        part->write(meta_addr % (1 << 20) +
                        static_cast<LocalAddr>(i) * 128 * 64,
                    0, 200 + i);
    double mee_writes_after = part->mee().counterCache().accesses();
    EXPECT_GE(mee_writes_after, mee_writes_before);
}

TEST_F(PartitionTest, KernelBoundaryResetsSampling)
{
    make(schemes::Scheme::ShmVL2);
    for (int i = 0; i < 4096; ++i)
        part->read(static_cast<LocalAddr>(i) * 128, 0,
                   100 + static_cast<Cycle>(i));
    EXPECT_TRUE(part->bank(0).sampleWarm());
    part->kernelBoundary(10000);
    EXPECT_FALSE(part->bank(0).sampleWarm());
}
