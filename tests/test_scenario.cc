/**
 * @file
 * The multi-tenant scenario engine and the core scenario-experiment
 * layer: single-tenant equivalence with the legacy run path,
 * determinism across repeats and shard counts, time-slice/partition
 * semantics, accuracy attribution, and the JSON / result-cache
 * round trips.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <unistd.h>

#include "core/result_cache.hh"
#include "core/scenario.hh"
#include "gpu/presets.hh"
#include "gpu/simulator.hh"
#include "schemes/schemes.hh"
#include "workload/benchmarks.hh"
#include "workload/scenario.hh"

using namespace shmgpu;
using namespace shmgpu::core;

namespace
{

/** Enough SMs/partitions that partitioned splits are non-trivial. */
gpu::GpuParams
scnConfig()
{
    gpu::GpuParams gp = gpu::testConfig();
    gp.numSms = 8;
    gp.numPartitions = 6;
    return gp;
}

/** The standard two-tenant mix: a streamer plus a late random tenant. */
workload::ScenarioSpec
twoTenantMix(workload::SharePolicy policy, Cycle quantum,
             bool flush_mdc = false)
{
    workload::ScenarioSpec scn;
    scn.name = "mix";
    scn.policy = policy;
    scn.quantumCycles = quantum;
    scn.flushMdcOnSwitch = flush_mdc;
    scn.tenants.push_back({"stream", workload::makeStreamingMicro(), 0});
    scn.tenants.push_back({"random", workload::makeRandomMicro(), 3000});
    return scn;
}

struct ScenarioRun
{
    gpu::ScenarioMetrics metrics;
    std::string stats;
};

ScenarioRun
runScenario(const gpu::GpuParams &gp, schemes::Scheme scheme,
            const workload::ScenarioSpec &scn)
{
    gpu::GpuSimulator sim(gp, schemes::makeMeeParams(scheme), scn);
    ScenarioRun r;
    r.metrics = sim.runScenario();
    std::ostringstream os;
    sim.statsRoot().dump(os);
    r.stats = os.str();
    return r;
}

/** Self-cleaning per-test cache directory under $TMPDIR. */
struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const char *tag)
    {
        path = std::filesystem::temp_directory_path() /
               ("shmgpu-scn-" + std::string(tag) + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::string
dumpJson(const json::Value &v)
{
    std::ostringstream os;
    v.write(os, 2);
    return os.str();
}

} // namespace

// The satellite contract: wrapping a workload as the degenerate
// scenario must reproduce the legacy single-workload run bit for bit —
// the entire stats tree, not just the headline metrics.
TEST(Scenario, SingleTenantMatchesLegacyRun)
{
    const gpu::GpuParams gp = scnConfig();
    const workload::WorkloadSpec spec = workload::makeMixedMicro();
    const mee::MeeParams mp =
        schemes::makeMeeParams(schemes::Scheme::Shm);

    gpu::GpuSimulator legacy(gp, mp, spec);
    gpu::RunMetrics lm = legacy.run();
    std::ostringstream legacy_stats;
    legacy.statsRoot().dump(legacy_stats);

    // The simulator keeps a pointer to the scenario, so it must
    // outlive the run.
    const workload::ScenarioSpec solo =
        workload::singleTenantScenario(spec);
    gpu::GpuSimulator scn(gp, mp, solo);
    gpu::ScenarioMetrics sm = scn.runScenario();
    std::ostringstream scn_stats;
    scn.statsRoot().dump(scn_stats);

    EXPECT_EQ(scn_stats.str(), legacy_stats.str());
    EXPECT_EQ(sm.total.cycles, lm.cycles);
    EXPECT_EQ(sm.total.instructions, lm.instructions);
    EXPECT_DOUBLE_EQ(sm.total.ipc, lm.ipc);
    EXPECT_EQ(sm.contextSwitches, 0u);
    ASSERT_EQ(sm.tenants.size(), 1u);
    EXPECT_EQ(sm.tenants[0].instructions, lm.instructions);
}

TEST(Scenario, RepeatedRunIsDeterministic)
{
    const gpu::GpuParams gp = scnConfig();
    const auto scn =
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000, true);
    ScenarioRun a = runScenario(gp, schemes::Scheme::Shm, scn);
    ScenarioRun b = runScenario(gp, schemes::Scheme::Shm, scn);
    EXPECT_EQ(a.stats, b.stats);
}

// --shards must never change a scenario's bytes: the engine is serial
// by construction (the ctor clamps the shard count), which is what
// lets CI byte-compare scenario runs across parallelism settings.
TEST(Scenario, ShardCountDoesNotChangeStats)
{
    const auto scn =
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000);
    gpu::GpuParams gp = scnConfig();
    ScenarioRun serial = runScenario(gp, schemes::Scheme::Shm, scn);
    for (std::uint32_t shards : {2u, 4u}) {
        gp.shards = shards;
        ScenarioRun sharded =
            runScenario(gp, schemes::Scheme::Shm, scn);
        EXPECT_EQ(sharded.stats, serial.stats)
            << "shards=" << shards;
    }
}

TEST(Scenario, ArrivalDelaysFirstDispatch)
{
    const auto r = runScenario(
        scnConfig(), schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 5000));
    ASSERT_EQ(r.metrics.tenants.size(), 2u);
    EXPECT_EQ(r.metrics.tenants[0].startCycle, 0u);
    EXPECT_GE(r.metrics.tenants[1].startCycle, 3000u);
    EXPECT_EQ(r.metrics.tenants[1].arrivalCycle, 3000u);
}

TEST(Scenario, SmallerQuantumMeansMoreSwitches)
{
    const gpu::GpuParams gp = scnConfig();
    const auto coarse = runScenario(
        gp, schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 20000));
    const auto fine = runScenario(
        gp, schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 1000));
    EXPECT_GT(fine.metrics.contextSwitches,
              coarse.metrics.contextSwitches);
    // Each tenant is re-dispatched after every preemption.
    EXPECT_GT(fine.metrics.tenants[0].dispatches, 1u);
}

TEST(Scenario, PartitionedModeNeverSwitches)
{
    const auto r = runScenario(
        scnConfig(), schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::Partitioned, 1000));
    EXPECT_EQ(r.metrics.contextSwitches, 0u);
    EXPECT_EQ(r.metrics.mdcFlushWritebacks, 0u);
    ASSERT_EQ(r.metrics.tenants.size(), 2u);
    for (const auto &t : r.metrics.tenants)
        EXPECT_GT(t.instructions, 0u);
}

TEST(Scenario, MdcFlushEmitsWritebacks)
{
    const gpu::GpuParams gp = scnConfig();
    const auto kept = runScenario(
        gp, schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 1000, false));
    const auto flushed = runScenario(
        gp, schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 1000, true));
    EXPECT_EQ(kept.metrics.mdcFlushWritebacks, 0u);
    EXPECT_GT(flushed.metrics.mdcFlushWritebacks, 0u);
}

// runScenarioExperiment's two-pass attribution must populate the
// per-tenant detector tallies and the solo-reference deltas — the
// headline quantum-degradation experiment depends on both.
TEST(ScenarioExperiment, AttributionAndSoloReferences)
{
    const auto scn =
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000);
    ScenarioExperimentResult r = runScenarioExperiment(
        scnConfig(), schemes::Scheme::Shm, scn);

    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_GT(r.meanSlowdown, 0.5);
    for (const auto &t : r.tenants) {
        EXPECT_GT(t.shared.roCorrect + t.shared.roMispredicts, 0u)
            << t.shared.name;
        EXPECT_GT(t.shared.strCorrect + t.shared.strMispredicts, 0u)
            << t.shared.name;
        EXPECT_GT(t.soloIpc, 0.0);
        EXPECT_GT(t.soloMdcHitRate, 0.0);
        EXPECT_GT(t.soloRoAccuracy, 0.0);
        // A tenant can never run faster shared than solo by much.
        EXPECT_GT(t.slowdown, 0.9) << t.shared.name;
    }
}

// Regression for the ROADMAP item-1 leftover: the switch-time
// detector flush used to also drop SHM_upper_bound's profile-primed
// predictions, degrading the oracle to learned-from-scratch after the
// first quantum. Every context switch now re-primes the incoming
// tenant's partitions, so the oracle's streaming accuracy must stay
// perfect through a many-switch mix — not just in the first quantum.
TEST(ScenarioExperiment, UpperBoundStaysPrimedAcrossSwitches)
{
    for (bool flush : {false, true}) {
        const auto scn = twoTenantMix(workload::SharePolicy::TimeSliced,
                                      2000, flush);
        ScenarioExperimentResult r = runScenarioExperiment(
            scnConfig(), schemes::Scheme::ShmUpperBound, scn);
        ASSERT_GT(r.metrics.contextSwitches, 5u)
            << "mix too short to exercise re-priming";
        ASSERT_EQ(r.tenants.size(), 2u);
        for (const auto &t : r.tenants) {
            EXPECT_GE(t.shared.strAccuracy, 0.999)
                << t.shared.name << " lost its primed predictions "
                << "(flush=" << flush << ")";
            // Sharing must not cost the oracle accuracy vs its solo
            // run: both start (and stay) perfectly primed.
            EXPECT_NEAR(t.strAccuracyDelta, 0.0, 1e-3)
                << t.shared.name;
        }
    }
}

TEST(ScenarioExperiment, WithoutSoloLeavesDeltasZero)
{
    ScenarioRunOptions opts;
    opts.withSolo = false;
    ScenarioExperimentResult r = runScenarioExperiment(
        scnConfig(), schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000), opts);
    EXPECT_EQ(r.meanSlowdown, 0.0);
    for (const auto &t : r.tenants) {
        EXPECT_EQ(t.soloIpc, 0.0);
        EXPECT_EQ(t.slowdown, 0.0);
    }
}

TEST(ScenarioExperiment, JsonRoundTripIsExact)
{
    ScenarioExperimentResult r = runScenarioExperiment(
        scnConfig(), schemes::Scheme::Shm,
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000));
    json::Value j = scenarioResultToJson(r);
    ScenarioExperimentResult back = scenarioResultFromJson(j);
    EXPECT_EQ(dumpJson(scenarioResultToJson(back)), dumpJson(j));
}

// Cell persistence: a second identical grid must load every cell from
// the cache and produce byte-identical results; a different quantum
// must key a different cell.
TEST(ScenarioExperiment, CellsRoundTripThroughResultCache)
{
    TempDir dir("cells");
    ResultCache cache(dir.str());

    const gpu::GpuParams gp = scnConfig();
    const auto scn =
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000);
    std::vector<ScenarioCell> cells = {
        {schemes::Scheme::Shm, &scn},
        {schemes::Scheme::Naive, &scn},
    };

    ScenarioSweepOptions opts;
    opts.cache = &cache;
    SweepTally cold;
    opts.tally = &cold;
    auto first = runScenarioCells(gp, cells, opts);
    EXPECT_EQ(cold.simulated, 2u);
    EXPECT_EQ(cold.cached, 0u);

    SweepTally warm;
    opts.tally = &warm;
    auto second = runScenarioCells(gp, cells, opts);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cached, 2u);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(dumpJson(scenarioResultToJson(second[i])),
                  dumpJson(scenarioResultToJson(first[i])))
            << "cell " << i;

    // The quantum is part of the content hash, so a different quantum
    // must miss.
    auto other = twoTenantMix(workload::SharePolicy::TimeSliced, 4000);
    std::vector<ScenarioCell> other_cells = {
        {schemes::Scheme::Shm, &other}};
    SweepTally miss;
    opts.tally = &miss;
    runScenarioCells(gp, other_cells, opts);
    EXPECT_EQ(miss.simulated, 1u);
}

// --jobs must never change result bytes (slot-indexed results, solo
// references memoized with call_once).
TEST(ScenarioExperiment, JobCountDoesNotChangeResults)
{
    const gpu::GpuParams gp = scnConfig();
    const auto ts =
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000);
    const auto part =
        twoTenantMix(workload::SharePolicy::Partitioned, 2000);
    std::vector<ScenarioCell> cells = {
        {schemes::Scheme::Shm, &ts},
        {schemes::Scheme::Naive, &ts},
        {schemes::Scheme::Shm, &part},
    };

    ScenarioSweepOptions serial;
    serial.jobs = 1;
    auto want = runScenarioCells(gp, cells, serial);

    ScenarioSweepOptions wide;
    wide.jobs = 4;
    auto got = runScenarioCells(gp, cells, wide);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(dumpJson(scenarioResultToJson(got[i])),
                  dumpJson(scenarioResultToJson(want[i])))
            << "cell " << i;
}

TEST(ScenarioExperiment, SweepDocumentIsDeterministic)
{
    const auto scn =
        twoTenantMix(workload::SharePolicy::TimeSliced, 2000);
    std::vector<ScenarioCell> cells = {{schemes::Scheme::Shm, &scn}};
    auto results = runScenarioCells(scnConfig(), cells, {});
    json::Value doc = scenarioSweepToJson(results);
    EXPECT_EQ(doc.at("kind").asString(), "scenario-sweep");
    EXPECT_EQ(doc.at("results").size(), 1u);
    EXPECT_EQ(dumpJson(scenarioSweepToJson(results)), dumpJson(doc));
}
