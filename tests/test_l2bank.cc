/**
 * @file
 * L2 bank tests: data path, victim-cache path, set-sampling monitor.
 */

#include <gtest/gtest.h>

#include "gpu/l2bank.hh"

using namespace shmgpu;
using namespace shmgpu::gpu;

namespace
{

GpuParams
params()
{
    GpuParams p;
    p.l2BankBytes = 8 * 1024; // small bank: 64 lines
    p.victimSampleRatio = 4;
    p.victimSampleWarmup = 8;
    return p;
}

} // namespace

TEST(L2Bank, ReadMissThenHit)
{
    L2Bank bank(params(), 0, 0);
    L2AccessResult r = bank.accessData(0x100, false);
    EXPECT_FALSE(r.hit);
    EXPECT_NE(r.fetchMask, 0u);
    r = bank.accessData(0x100, false);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(bank.accesses(), 2);
    EXPECT_EQ(bank.misses(), 1);
}

TEST(L2Bank, WriteValidates)
{
    L2Bank bank(params(), 0, 0);
    L2AccessResult r = bank.accessData(0x200, true);
    EXPECT_TRUE(r.writeNoFetch);
    EXPECT_TRUE(bank.accessData(0x200, false).hit);
}

TEST(L2Bank, DirtyEvictionSurfacesWriteback)
{
    GpuParams p = params();
    p.l2BankBytes = 2048; // 16 lines, 16-way => 1 set
    p.l2Assoc = 16;
    L2Bank bank(p, 0, 0);

    bank.accessData(0, true); // dirty line
    bool saw_wb = false;
    for (int i = 1; i <= 20; ++i) {
        auto r = bank.accessData(static_cast<LocalAddr>(i) * 128, false);
        saw_wb |= (r.writeback.valid && r.writeback.blockAddr == 0);
    }
    EXPECT_TRUE(saw_wb);
}

TEST(L2Bank, VictimInsertAndProbe)
{
    L2Bank bank(params(), 0, 0);
    Addr meta = 1 << 20;
    EXPECT_FALSE(bank.probeVictim(meta));
    bank.insertVictim(meta, 0xF, 0x3);
    EXPECT_TRUE(bank.probeVictim(meta));
}

TEST(L2Bank, SamplingTracksMissRate)
{
    L2Bank bank(params(), 0, 0);
    // Streaming misses over sampled lines (sample ratio 4, 1 bank).
    for (int i = 0; i < 256; ++i)
        bank.accessData(static_cast<LocalAddr>(i) * 128, false);
    EXPECT_TRUE(bank.sampleWarm());
    EXPECT_GT(bank.sampledMissRate(), 0.95);

    bank.resetSampling();
    EXPECT_FALSE(bank.sampleWarm());
    EXPECT_EQ(bank.sampledMissRate(), 0.0);
}

TEST(L2Bank, SamplingSeesHits)
{
    L2Bank bank(params(), 0, 0);
    // Touch a small set twice: second pass hits.
    for (int pass = 0; pass < 8; ++pass)
        for (int i = 0; i < 16; ++i)
            bank.accessData(static_cast<LocalAddr>(i) * 128, false);
    EXPECT_TRUE(bank.sampleWarm());
    EXPECT_LT(bank.sampledMissRate(), 0.5);
}
