/**
 * @file
 * Scenario determinism fuzz: random tenant mixes x schemes x share
 * policies, each run three times — serially, repeated, and with
 * shards 2 and 4 — requiring full stats-tree equality every time.
 * This is the property the CI byte-compare job samples at one point;
 * here it is hammered across the configuration space.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "gpu/presets.hh"
#include "gpu/simulator.hh"
#include "schemes/schemes.hh"
#include "workload/benchmarks.hh"
#include "workload/scenario.hh"

using namespace shmgpu;

namespace
{

gpu::GpuParams
fuzzConfig()
{
    gpu::GpuParams gp = gpu::testConfig();
    gp.numSms = 8;
    gp.numPartitions = 6;
    return gp;
}

workload::WorkloadSpec
randomWorkload(Rng &rng)
{
    // Small footprints/iteration counts keep a fuzz trial cheap while
    // still exercising multi-kernel dispatch and both access shapes.
    switch (rng.below(3)) {
      case 0:
        return workload::makeStreamingMicro(1 << 18, 512);
      case 1:
        return workload::makeRandomMicro(1 << 18, 512);
      default:
        return workload::makeMixedMicro();
    }
}

workload::ScenarioSpec
randomScenario(Rng &rng)
{
    workload::ScenarioSpec scn;
    scn.name = "fuzz";
    scn.policy = rng.chance(0.5) ? workload::SharePolicy::TimeSliced
                                 : workload::SharePolicy::Partitioned;
    scn.quantumCycles = 500 + rng.below(8000);
    scn.flushMdcOnSwitch = rng.chance(0.5);
    scn.keySeed = 1 + rng.below(4);

    const std::size_t n = 1 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i) {
        workload::TenantSpec t;
        t.workload = randomWorkload(rng);
        t.name = t.workload.name + "#" + std::to_string(i);
        t.arrivalCycle = rng.below(3) * 2500;
        scn.tenants.push_back(std::move(t));
    }
    return scn;
}

schemes::Scheme
randomScheme(Rng &rng, workload::SharePolicy policy)
{
    // Partitioned scenarios require local metadata addressing (each
    // tenant's metadata lives inside its own partition slice), which
    // rules out the globally-addressed Naive layout there.
    if (policy == workload::SharePolicy::Partitioned) {
        const schemes::Scheme pool[] = {
            schemes::Scheme::Baseline, schemes::Scheme::Pssm,
            schemes::Scheme::Shm};
        return pool[rng.below(3)];
    }
    const schemes::Scheme pool[] = {
        schemes::Scheme::Baseline, schemes::Scheme::Naive,
        schemes::Scheme::Pssm, schemes::Scheme::Shm};
    return pool[rng.below(4)];
}

std::string
statsOf(const gpu::GpuParams &gp, schemes::Scheme scheme,
        const workload::ScenarioSpec &scn)
{
    gpu::GpuSimulator sim(gp, schemes::makeMeeParams(scheme), scn);
    sim.runScenario();
    std::ostringstream os;
    sim.statsRoot().dump(os);
    return os.str();
}

class ScenarioDeterminismFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(ScenarioDeterminismFuzz, StatsTreeIsReproducible)
{
    Rng rng(GetParam() * 0x9E3779B97F4A7C15ull + 0xC0FFEE);
    const workload::ScenarioSpec scn = randomScenario(rng);
    const schemes::Scheme scheme = randomScheme(rng, scn.policy);
    SCOPED_TRACE(workload::sharePolicyName(scn.policy) +
                 std::string("/") + schemes::schemeName(scheme) +
                 "/tenants=" + std::to_string(scn.tenants.size()) +
                 "/quantum=" + std::to_string(scn.quantumCycles));

    gpu::GpuParams gp = fuzzConfig();
    const std::string want = statsOf(gp, scheme, scn);
    EXPECT_EQ(statsOf(gp, scheme, scn), want) << "repeat diverged";
    for (std::uint32_t shards : {2u, 4u}) {
        gp.shards = shards;
        EXPECT_EQ(statsOf(gp, scheme, scn), want)
            << "shards=" << shards << " diverged";
    }
}

INSTANTIATE_TEST_SUITE_P(Mixes, ScenarioDeterminismFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));
