/**
 * @file
 * Partition address-mapping tests: the map must be a bijection, keep
 * stripes intact, and balance load across partitions.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "mem/addr_map.hh"

using namespace shmgpu;
using namespace shmgpu::mem;

class AddrMapParamTest
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>>
{
};

TEST_P(AddrMapParamTest, RoundTripIsIdentity)
{
    auto [partitions, stripe] = GetParam();
    AddressMap map(partitions, stripe);
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.below(1ull << 34);
        PartitionAddr pa = map.toLocal(addr);
        EXPECT_LT(pa.partition, partitions);
        EXPECT_EQ(map.toPhysical(pa.partition, pa.local), addr);
    }
}

TEST_P(AddrMapParamTest, SequentialSpreadIsBalanced)
{
    auto [partitions, stripe] = GetParam();
    AddressMap map(partitions, stripe);
    std::vector<std::uint64_t> counts(partitions, 0);
    const std::uint64_t stripes = 12000;
    for (std::uint64_t s = 0; s < stripes; ++s)
        ++counts[map.toLocal(s * stripe).partition];
    for (unsigned p = 0; p < partitions; ++p) {
        double share = static_cast<double>(counts[p]) / stripes;
        EXPECT_NEAR(share, 1.0 / partitions, 0.02);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddrMapParamTest,
    ::testing::Values(std::make_tuple(12u, 256ull),
                      std::make_tuple(12u, 512ull),
                      std::make_tuple(8u, 256ull),
                      std::make_tuple(6u, 128ull),
                      std::make_tuple(1u, 256ull),
                      std::make_tuple(16u, 1024ull)));

TEST(AddrMap, StripeStaysContiguous)
{
    AddressMap map(12, 256);
    // All bytes of one stripe land in the same partition, at
    // consecutive local offsets.
    Addr base = 7 * 256;
    PartitionAddr first = map.toLocal(base);
    for (Addr off = 1; off < 256; ++off) {
        PartitionAddr pa = map.toLocal(base + off);
        EXPECT_EQ(pa.partition, first.partition);
        EXPECT_EQ(pa.local, first.local + off);
    }
}

TEST(AddrMap, LocalAddressesAreDense)
{
    // Walking one super-stripe of physical space gives each partition
    // exactly one stripe of local space.
    AddressMap map(12, 256);
    std::map<PartitionId, std::vector<LocalAddr>> locals;
    for (unsigned s = 0; s < 12 * 50; ++s) {
        PartitionAddr pa = map.toLocal(Addr{s} * 256);
        locals[pa.partition].push_back(pa.local);
    }
    for (auto &[p, addrs] : locals) {
        ASSERT_EQ(addrs.size(), 50u);
        for (std::size_t i = 0; i < addrs.size(); ++i)
            EXPECT_EQ(addrs[i], i * 256) << "partition " << p;
    }
}

TEST(AddrMap, SwizzleBreaksPowerOfTwoStrides)
{
    // With the XOR swizzle, a large power-of-two stride should not
    // hammer a single partition.
    AddressMap map(8, 256, true);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 800; ++i)
        ++counts[map.toLocal(Addr{static_cast<std::uint64_t>(i)} *
                             (256 * 8 * 4))
                     .partition];
    int max_count = *std::max_element(counts.begin(), counts.end());
    EXPECT_LT(max_count, 400) << "stride collapsed onto one partition";
}

TEST(AddrMap, NoSwizzleKeepsRotation)
{
    AddressMap map(4, 256, false);
    for (unsigned s = 0; s < 64; ++s)
        EXPECT_EQ(map.toLocal(Addr{s} * 256).partition, s % 4);
}
