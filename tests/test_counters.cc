/**
 * @file
 * Split-counter store and shared-counter tests.
 */

#include <gtest/gtest.h>

#include "meta/counters.hh"

using namespace shmgpu;
using namespace shmgpu::meta;

namespace
{

class CounterTest : public ::testing::Test
{
  protected:
    CounterTest() : layout(makeParams()), store(layout) {}

    static LayoutParams
    makeParams()
    {
        LayoutParams p;
        p.dataBytes = 1 << 20;
        return p;
    }

    MetadataLayout layout;
    CounterStore store;
};

} // namespace

TEST_F(CounterTest, DefaultsToZero)
{
    EXPECT_EQ(store.read(0), (CounterValue{0, 0}));
    EXPECT_EQ(store.read(999 * 128), (CounterValue{0, 0}));
    EXPECT_EQ(store.materializedBlocks(), 0u);
}

TEST_F(CounterTest, IncrementAdvancesMinorOnly)
{
    auto r = store.increment(0);
    EXPECT_FALSE(r.minorOverflow);
    EXPECT_EQ(r.value, (CounterValue{0, 1}));
    EXPECT_EQ(store.read(0), (CounterValue{0, 1}));
    // Sibling block in the same counter block is untouched.
    EXPECT_EQ(store.read(128), (CounterValue{0, 0}));
}

TEST_F(CounterTest, MinorOverflowBumpsMajorAndResetsRegion)
{
    store.increment(128); // sibling with minor 1
    for (int i = 0; i < 127; ++i)
        EXPECT_FALSE(store.increment(0).minorOverflow);
    EXPECT_EQ(store.read(0).minor, 127u);

    auto r = store.increment(0);
    EXPECT_TRUE(r.minorOverflow);
    EXPECT_EQ(r.value, (CounterValue{1, 0}));
    // The whole region re-encrypts: every minor reset, major bumped.
    EXPECT_EQ(store.read(128), (CounterValue{1, 0}));
}

TEST_F(CounterTest, DevolveFromShared)
{
    auto r = store.devolveFromShared(2 * 128, 3);
    EXPECT_EQ(r.value, (CounterValue{3, 1}));
    // Fig. 8: siblings get (shared, pad=0).
    EXPECT_EQ(store.read(0), (CounterValue{3, 0}));
    EXPECT_EQ(store.read(63 * 128), (CounterValue{3, 0}));
    // ...but only within this counter block.
    EXPECT_EQ(store.read(64 * 128), (CounterValue{0, 0}));
}

TEST_F(CounterTest, SetRegionMajor)
{
    store.increment(0);
    store.setRegionMajor(0, 9);
    EXPECT_EQ(store.read(0), (CounterValue{9, 0}));
    EXPECT_EQ(store.read(63 * 128), (CounterValue{9, 0}));
}

TEST_F(CounterTest, BumpMajor)
{
    store.increment(0);
    store.bumpMajor(0);
    EXPECT_EQ(store.read(0), (CounterValue{1, 0}));
}

TEST_F(CounterTest, MaxMajorScan)
{
    EXPECT_EQ(store.maxMajor(0, 1 << 20), 0u);
    store.setRegionMajor(0, 5);
    store.setRegionMajor(16 * 1024, 9);
    store.setRegionMajor(512 * 1024, 2);
    EXPECT_EQ(store.maxMajor(0, 1 << 20), 9u);
    // Restricted scan misses the remote region.
    EXPECT_EQ(store.maxMajor(0, 8 * 1024), 5u);
}

TEST_F(CounterTest, RestoreForReplayAttacks)
{
    store.increment(0);
    store.increment(0);
    store.restore(0, {7, 1});
    EXPECT_EQ(store.read(0), (CounterValue{7, 1}));
}

TEST_F(CounterTest, SerializeReflectsContent)
{
    auto before = store.serializeCounterBlock(0);
    EXPECT_EQ(before.size(), 8u + 64u);
    store.increment(0);
    auto after = store.serializeCounterBlock(0);
    EXPECT_NE(before, after);
    // Untouched blocks serialize like the default.
    EXPECT_EQ(store.serializeCounterBlock(1), before);
}

TEST(SharedCounter, StartsAtZeroForAliasSafety)
{
    SharedCounter s;
    EXPECT_EQ(s.value(), 0u);
}

TEST(SharedCounter, RaiseAboveNeverLowers)
{
    SharedCounter s;
    s.raiseAbove(10);
    EXPECT_EQ(s.value(), 11u);
    s.raiseAbove(3); // below current: still advances past current
    EXPECT_EQ(s.value(), 12u);
    s.advance();
    EXPECT_EQ(s.value(), 13u);
}
