/**
 * @file
 * AccessProfile (ground-truth oracle) tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "detect/oracle.hh"

using namespace shmgpu;
using namespace shmgpu::detect;

TEST(AccessProfile, RegionsDefaultToReadOnly)
{
    AccessProfile p(2);
    EXPECT_TRUE(p.regionReadOnly(0, 0));
    EXPECT_TRUE(p.regionReadOnly(1, 123456));
}

TEST(AccessProfile, WritesMarkRegions)
{
    AccessProfile p(2);
    p.recordAccess(0, 100, true, 0);
    EXPECT_FALSE(p.regionReadOnly(0, 0));
    EXPECT_FALSE(p.regionReadOnly(0, 16 * 1024 - 1));
    EXPECT_TRUE(p.regionReadOnly(0, 16 * 1024));
    EXPECT_TRUE(p.regionReadOnly(1, 0)) << "partitions are separate";
}

TEST(AccessProfile, ReadsDoNotMarkRegions)
{
    AccessProfile p(1);
    p.recordAccess(0, 0, false, 0);
    EXPECT_TRUE(p.regionReadOnly(0, 0));
}

TEST(AccessProfile, StreamedChunkClassifiedStreaming)
{
    AccessProfile p(1);
    Cycle now = 0;
    for (int s = 0; s < 128; ++s)
        p.recordAccess(0, static_cast<LocalAddr>(s) * 32, false, now++);
    p.finalize(now);
    EXPECT_TRUE(p.chunkStreaming(0, 0));
}

TEST(AccessProfile, SparseChunkClassifiedRandom)
{
    AccessProfile p(1);
    p.recordAccess(0, 0, false, 0);
    p.recordAccess(0, 17 * 128, false, 1);
    p.finalize(10000);
    EXPECT_FALSE(p.chunkStreaming(0, 0));
}

TEST(AccessProfile, BlockGranularSweepIsStreaming)
{
    // One access per block (write-back style) still counts as full
    // coverage for the oracle.
    AccessProfile p(1);
    Cycle now = 0;
    for (int b = 0; b < 32; ++b)
        p.recordAccess(0, static_cast<LocalAddr>(b) * 128, true, now++);
    p.finalize(now);
    EXPECT_TRUE(p.chunkStreaming(0, 0));
}

TEST(AccessProfile, MajorityVoteAcrossPhases)
{
    // A chunk streamed twice and random-probed once stays streaming.
    AccessProfile p(1);
    Cycle now = 0;
    for (int pass = 0; pass < 2; ++pass)
        for (int s = 0; s < 128; ++s)
            p.recordAccess(0, static_cast<LocalAddr>(s) * 32, false,
                           now++);
    // Sparse probe, expired by finalize.
    p.recordAccess(0, 5 * 128, false, now);
    p.finalize(now + 10000);
    EXPECT_TRUE(p.chunkStreaming(0, 0));
}

TEST(AccessProfile, UnprofiledChunksKeepEagerDefault)
{
    AccessProfile p(1);
    EXPECT_TRUE(p.chunkStreaming(0, 999 * 4096));
}

TEST(AccessProfile, ForEachChunkVisitsAll)
{
    AccessProfile p(1);
    Cycle now = 0;
    for (int s = 0; s < 128; ++s)
        p.recordAccess(0, static_cast<LocalAddr>(s) * 32, false, now++);
    p.recordAccess(0, 10 * 4096, false, now);
    p.finalize(now + 10000);

    int chunks = 0;
    int streaming = 0;
    p.forEachChunk(0, [&](std::uint64_t chunk, bool is_streaming) {
        ++chunks;
        if (chunk == 0) {
            EXPECT_TRUE(is_streaming);
        }
        streaming += is_streaming;
    });
    EXPECT_EQ(chunks, 2);
    EXPECT_EQ(streaming, 1);
}

TEST(AccessProfile, ForEachWrittenRegion)
{
    AccessProfile p(1);
    p.recordAccess(0, 0, true, 0);
    p.recordAccess(0, 40 * 1024, true, 1);
    p.recordAccess(0, 90 * 1024, false, 2);

    std::vector<std::uint64_t> regions;
    p.forEachWrittenRegion(0, [&](std::uint64_t r) {
        regions.push_back(r);
    });
    std::sort(regions.begin(), regions.end());
    EXPECT_EQ(regions, (std::vector<std::uint64_t>{0, 2}));
}

TEST(AccessProfile, AccessRatiosAggregateAcrossPartitions)
{
    AccessProfile p(2);
    Cycle now = 0;
    // Partition 0: a fully streamed, read-only chunk (128 accesses).
    for (int s = 0; s < 128; ++s)
        p.recordAccess(0, static_cast<LocalAddr>(s) * 32, false, now++);
    // Partition 1: 64 sparse accesses incl. writes (random, written).
    for (int i = 0; i < 64; ++i)
        p.recordAccess(1, (i % 3) * 128, true, now++);
    p.finalize(now + 10000);

    auto r = p.accessRatios();
    EXPECT_EQ(r.totalAccesses, 192u);
    EXPECT_NEAR(r.streaming, 128.0 / 192.0, 1e-9);
    EXPECT_NEAR(r.readOnly, 128.0 / 192.0, 1e-9);
}
