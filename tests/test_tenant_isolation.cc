/**
 * @file
 * Cross-tenant key-domain isolation: two tenants of a shared GPU get
 * independent (K1, K2, K3) tuples plus a tenant tag in every seed and
 * MAC, so no tenant can decrypt or authenticate another tenant's
 * lines — even with full physical access to the shared DRAM. These
 * tests mount the actual attacks: splicing one tenant's ciphertext,
 * MAC, and counters into another tenant's off-chip state.
 */

#include <gtest/gtest.h>

#include "crypto/keygen.hh"
#include "mee/functional.hh"

using namespace shmgpu;
using namespace shmgpu::mee;
using shmgpu::crypto::DataBlock;

namespace
{

constexpr std::uint64_t kMasterSeed = 7;

meta::LayoutParams
smallLayout()
{
    meta::LayoutParams p;
    p.dataBytes = 1 << 20;
    return p;
}

DataBlock
pattern(std::uint8_t seed)
{
    DataBlock b;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>(seed + i * 3);
    return b;
}

SecureMemoryContext
tenantContext(std::uint32_t tenant)
{
    return SecureMemoryContext(smallLayout(), kMasterSeed,
                               detect::ReadOnlyDetectorParams{}, tenant);
}

} // namespace

TEST(TenantKeys, TenantZeroIsTheLegacyDomain)
{
    crypto::KeyTuple legacy = crypto::generateKeys(kMasterSeed);
    crypto::KeyTuple t0 = crypto::generateTenantKeys(kMasterSeed, 0);
    EXPECT_EQ(t0.encryptionKey, legacy.encryptionKey);
    EXPECT_EQ(t0.macKey, legacy.macKey);
    EXPECT_EQ(t0.treeKey, legacy.treeKey);
}

TEST(TenantKeys, DomainsAreIndependent)
{
    crypto::KeyTuple t0 = crypto::generateTenantKeys(kMasterSeed, 0);
    crypto::KeyTuple t1 = crypto::generateTenantKeys(kMasterSeed, 1);
    crypto::KeyTuple t2 = crypto::generateTenantKeys(kMasterSeed, 2);
    EXPECT_NE(t1.encryptionKey, t0.encryptionKey);
    EXPECT_NE(t1.macKey, t0.macKey);
    EXPECT_NE(t1.treeKey, t0.treeKey);
    EXPECT_NE(t2.encryptionKey, t1.encryptionKey);
    EXPECT_NE(t2.macKey, t1.macKey);

    // Same tenant id, different master seed: also independent.
    crypto::KeyTuple other = crypto::generateTenantKeys(kMasterSeed + 1, 1);
    EXPECT_NE(other.encryptionKey, t1.encryptionKey);
}

TEST(TenantIsolation, CiphertextsDifferAcrossTenants)
{
    SecureMemoryContext a = tenantContext(1);
    SecureMemoryContext b = tenantContext(2);
    DataBlock plain = pattern(5);
    a.hostWrite(0x1000, plain);
    b.hostWrite(0x1000, plain);
    // Same plaintext, address, and counter state — different keys and
    // tenant tags, so the off-chip bytes must differ.
    EXPECT_NE(a.memory().readBlock(0x1000), b.memory().readBlock(0x1000));
}

TEST(TenantIsolation, ReadOnlySpliceIsDetected)
{
    SecureMemoryContext victim = tenantContext(1);
    SecureMemoryContext attacker = tenantContext(2);
    DataBlock secret = pattern(11);
    DataBlock decoy = pattern(13);
    victim.hostWrite(0x2000, secret);
    attacker.hostWrite(0x2000, decoy);

    // Splice the attacker's ciphertext + MAC into the victim's DRAM
    // (the shared-counter read-only path, where the MAC is the only
    // gate — no BMT walk).
    victim.replayBlock(attacker.snapshotBlock(0x2000));
    auto r = victim.deviceRead(0x2000);
    EXPECT_EQ(r.status, VerifyStatus::MacMismatch);
}

TEST(TenantIsolation, PerBlockCounterSpliceIsDetected)
{
    SecureMemoryContext victim = tenantContext(1);
    SecureMemoryContext attacker = tenantContext(2);
    victim.deviceWrite(0x3000, pattern(17));
    attacker.deviceWrite(0x3000, pattern(19));

    // Ciphertext, MAC, *and* counters spliced: the MAC key and tenant
    // tag still differ, so authentication fails before freshness is
    // even consulted.
    victim.replayBlock(attacker.snapshotBlock(0x3000));
    auto r = victim.deviceRead(0x3000);
    EXPECT_EQ(r.status, VerifyStatus::MacMismatch);
}

TEST(TenantIsolation, SameDomainControl)
{
    // Control: identical tenant id and master seed IS the same key
    // domain — the splice that fails across tenants succeeds here,
    // proving the isolation above comes from the domain separation.
    SecureMemoryContext a = tenantContext(3);
    SecureMemoryContext b = tenantContext(3);
    DataBlock plain = pattern(23);
    a.hostWrite(0x4000, plain);
    b.hostWrite(0x4000, pattern(29));

    b.replayBlock(a.snapshotBlock(0x4000));
    auto r = b.deviceRead(0x4000);
    EXPECT_EQ(r.status, VerifyStatus::Ok);
    EXPECT_EQ(r.data, plain);
}

TEST(TenantIsolation, TenantZeroContextMatchesLegacyContext)
{
    // A tenant-0 context and a legacy (no tenant argument) context
    // produce identical off-chip bytes: single-tenant scenarios are
    // bit-compatible with the legacy path down to the ciphertext.
    SecureMemoryContext legacy(smallLayout(), kMasterSeed);
    SecureMemoryContext t0 = tenantContext(0);
    DataBlock plain = pattern(31);
    legacy.hostWrite(0x5000, plain);
    t0.hostWrite(0x5000, plain);
    EXPECT_EQ(legacy.memory().readBlock(0x5000),
              t0.memory().readBlock(0x5000));

    t0.replayBlock(legacy.snapshotBlock(0x5000));
    EXPECT_EQ(t0.deviceRead(0x5000).status, VerifyStatus::Ok);
}
