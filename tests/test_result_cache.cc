/**
 * @file
 * ResultCache tests: cell-key sensitivity (every config axis moves
 * the key, equal configs agree), store/load byte round-trips,
 * corrupt-file tolerance, sweep resume equality (cancel at cell K,
 * resume, byte-diff the documents), and a key-collision fuzz pass.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unistd.h>

#include "core/result_cache.hh"
#include "core/sweep.hh"
#include "workload/benchmarks.hh"

using namespace shmgpu;
using namespace shmgpu::core;

namespace
{

gpu::GpuParams
quickParams()
{
    gpu::GpuParams p;
    p.maxCyclesPerKernel = 20000;
    return p;
}

/** Self-cleaning per-test cache directory under $TMPDIR. */
struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const char *tag)
    {
        path = std::filesystem::temp_directory_path() /
               ("shmgpu-rc-" + std::string(tag) + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::uint64_t
keyWith(const gpu::GpuParams &gp, const RunOptions &opts,
        const workload::WorkloadSpec &spec,
        schemes::Scheme scheme = schemes::Scheme::Shm,
        crypto::Backend backend = crypto::Backend::Scalar,
        const std::string &version = "v-test")
{
    return cellKey(gp, gpu::EnergyParams{}, opts, scheme, spec, backend,
                   version);
}

std::string
sweepBytes(const std::vector<ExperimentResult> &results)
{
    std::ostringstream os;
    writeSweepJson(os, results);
    return os.str();
}

} // namespace

TEST(CellKey, EqualConfigsAgree)
{
    auto spec = workload::makeStreamingMicro();
    EXPECT_EQ(keyWith(quickParams(), RunOptions{}, spec),
              keyWith(quickParams(), RunOptions{}, spec));
}

TEST(CellKey, EveryAxisMovesTheKey)
{
    auto spec = workload::makeStreamingMicro();
    const std::uint64_t base = keyWith(quickParams(), RunOptions{}, spec);

    // A GpuParams override (the --overrides / --cycles path).
    gpu::GpuParams assoc = quickParams();
    assoc.l2Assoc *= 2;
    EXPECT_NE(keyWith(assoc, RunOptions{}, spec), base);
    gpu::GpuParams cycles = quickParams();
    cycles.maxCyclesPerKernel += 1;
    EXPECT_NE(keyWith(cycles, RunOptions{}, spec), base);

    // Replacement policies, both the L2 and the metadata-cache knob.
    gpu::GpuParams pol = quickParams();
    pol.l2Policy = mem::PolicyKind::Sieve;
    EXPECT_NE(keyWith(pol, RunOptions{}, spec), base);
    RunOptions mdc;
    mdc.mdcPolicy = mem::PolicyKind::Fifo;
    EXPECT_NE(keyWith(quickParams(), mdc, spec), base);

    // Accuracy collection changes the attribution tallies.
    RunOptions acc;
    acc.collectAccuracy = true;
    EXPECT_NE(keyWith(quickParams(), acc, spec), base);

    // Scheme, workload content, crypto backend, code version.
    EXPECT_NE(keyWith(quickParams(), RunOptions{}, spec,
                      schemes::Scheme::Naive),
              base);
    auto other = workload::makeRandomMicro();
    EXPECT_NE(keyWith(quickParams(), RunOptions{}, other), base);
    EXPECT_NE(keyWith(quickParams(), RunOptions{}, spec,
                      schemes::Scheme::Shm, crypto::Backend::AesNi),
              base);
    EXPECT_NE(keyWith(quickParams(), RunOptions{}, spec,
                      schemes::Scheme::Shm, crypto::Backend::Scalar,
                      "v-other"),
              base);
}

TEST(CellKey, AdaptiveKnobsMoveTheKey)
{
    // The adaptive controls change the simulated machine, so every
    // distinct setting — including "explicitly 0" vs "unset" (scheme
    // default) — needs its own cell.
    auto spec = workload::makeStreamingMicro();
    const std::uint64_t base = keyWith(quickParams(), RunOptions{}, spec);

    RunOptions epoch;
    epoch.adaptEpoch = 10000;
    EXPECT_NE(keyWith(quickParams(), epoch, spec), base);

    RunOptions frozen;
    frozen.adaptEpoch = 0; // freezes at Full != scheme default
    EXPECT_NE(keyWith(quickParams(), frozen, spec), base);
    EXPECT_NE(keyWith(quickParams(), frozen, spec),
              keyWith(quickParams(), epoch, spec));

    RunOptions th;
    th.adaptThresholds = mee::AdaptThresholds{};
    EXPECT_NE(keyWith(quickParams(), th, spec), base);
    RunOptions th2 = th;
    th2.adaptThresholds->roMinReads += 1;
    EXPECT_NE(keyWith(quickParams(), th2, spec),
              keyWith(quickParams(), th, spec));
    RunOptions th3 = th;
    th3.adaptThresholds->macOnlyMissRate = 0.5;
    EXPECT_NE(keyWith(quickParams(), th3, spec),
              keyWith(quickParams(), th, spec));
}

TEST(ScenarioKey, AdaptiveKnobsMoveTheScenarioKey)
{
    auto scn = workload::singleTenantScenario(
        workload::makeStreamingMicro());
    auto key = [&](std::optional<Cycle> epoch,
                   std::optional<mee::AdaptThresholds> th) {
        return scenarioCellKey(quickParams(), gpu::EnergyParams{},
                               /*with_solo=*/true, mem::PolicyKind::Lru,
                               epoch, th, schemes::Scheme::ShmAdaptive,
                               scn, crypto::Backend::Scalar, "v-test");
    };
    const std::uint64_t base = key(std::nullopt, std::nullopt);
    EXPECT_EQ(base, key(std::nullopt, std::nullopt));
    EXPECT_NE(key(Cycle{10000}, std::nullopt), base);
    EXPECT_NE(key(Cycle{0}, std::nullopt), base);
    EXPECT_NE(key(Cycle{0}, std::nullopt),
              key(Cycle{10000}, std::nullopt));
    mee::AdaptThresholds th;
    EXPECT_NE(key(std::nullopt, th), base);
    th.streamMinReads += 8;
    EXPECT_NE(key(std::nullopt, th),
              key(std::nullopt, mee::AdaptThresholds{}));
}

TEST(CellKey, TraceOptionsDoNotSplitTheCache)
{
    // Tracing observes a run without changing its results, so traced
    // and untraced sweeps must share cells.
    auto spec = workload::makeStreamingMicro();
    RunOptions traced;
    traced.tracePath = "/tmp/evtrace.json";
    traced.traceDir = "/tmp/traces";
    EXPECT_EQ(keyWith(quickParams(), traced, spec),
              keyWith(quickParams(), RunOptions{}, spec));
}

TEST(CellKey, ZipfAlphaReachesTheKeyThroughContentHash)
{
    auto a = workload::makeZipfSpec(1 << 20, 0.5);
    auto b = workload::makeZipfSpec(1 << 20, 0.9);
    // Same footprint, same name lengths, different skew: the specs'
    // content must separate the cells.
    EXPECT_NE(workload::contentHash(a), workload::contentHash(b));
    EXPECT_NE(keyWith(quickParams(), RunOptions{}, a),
              keyWith(quickParams(), RunOptions{}, b));
}

TEST(ResultCache, MissOnEmptyDirectory)
{
    TempDir dir("miss");
    ResultCache cache(dir.str());
    ExperimentResult out;
    EXPECT_FALSE(cache.load(0x1234, &out));
}

TEST(ResultCache, StoreLoadRoundTripsByteIdentically)
{
    TempDir dir("roundtrip");
    ResultCache cache(dir.str());

    auto spec = workload::makeStreamingMicro();
    Experiment exp(quickParams());
    ExperimentResult fresh =
        exp.run(schemes::Scheme::Shm, spec, RunOptions{});

    const std::uint64_t key = keyWith(quickParams(), RunOptions{}, spec);
    cache.store(key, fresh);
    ExperimentResult loaded;
    ASSERT_TRUE(cache.load(key, &loaded));

    // The resume byte-identity contract, stated at its root: the
    // loaded cell serializes to exactly the bytes the fresh one does.
    EXPECT_EQ(resultToJson(loaded).dump(2), resultToJson(fresh).dump(2));
}

TEST(ResultCache, CorruptOrForeignFilesAreMisses)
{
    TempDir dir("corrupt");
    ResultCache cache(dir.str());
    const std::uint64_t key = 0xabcdef12345678ull;
    const std::string path =
        dir.str() + "/" + ResultCache::fileName(key);

    auto write_file = [&](const std::string &text) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text;
    };
    ExperimentResult out;

    write_file("not json at all {{{");
    EXPECT_FALSE(cache.load(key, &out));

    write_file("{\"schemaVersion\": 1}"); // missing members
    EXPECT_FALSE(cache.load(key, &out));

    write_file("{\"schemaVersion\": 999, \"key\": \"x\", "
               "\"result\": {}}"); // future schema
    EXPECT_FALSE(cache.load(key, &out));

    // A real cell renamed onto the wrong key (hand-copied directory).
    write_file("{\"schemaVersion\": 1, \"key\": \"cell-feed.json\", "
               "\"result\": {}}");
    EXPECT_FALSE(cache.load(key, &out));

    write_file(""); // truncated to nothing
    EXPECT_FALSE(cache.load(key, &out));
}

TEST(ResultCache, SweepSecondRunIsAllCacheHits)
{
    TempDir dir("warm");
    ResultCache cache(dir.str());

    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    std::vector<const workload::WorkloadSpec *> workloads = {&stream,
                                                             &random};
    std::vector<schemes::Scheme> designs = {schemes::Scheme::Naive,
                                            schemes::Scheme::Shm};

    SweepOptions opts;
    opts.cache = &cache;
    SweepTally cold, warm;

    SweepRunner runner(quickParams());
    opts.tally = &cold;
    auto first = runner.run(designs, workloads, opts);
    EXPECT_EQ(cold.simulated, 4u);
    EXPECT_EQ(cold.cached, 0u);

    opts.tally = &warm;
    auto second = runner.run(designs, workloads, opts);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cached, 4u);

    EXPECT_EQ(sweepBytes(first), sweepBytes(second));
}

TEST(ResultCache, CancelAtCellKThenResumeIsByteIdentical)
{
    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    workload::WorkloadSpec mixed = workload::makeMixedMicro();
    std::vector<const workload::WorkloadSpec *> workloads = {
        &stream, &random, &mixed};
    std::vector<schemes::Scheme> designs = {schemes::Scheme::Naive,
                                            schemes::Scheme::Shm};

    // The reference document: one uninterrupted, uncached sweep.
    SweepRunner runner(quickParams());
    const std::string reference =
        sweepBytes(runner.run(designs, workloads, SweepOptions{}));

    for (std::size_t k : {std::size_t{1}, std::size_t{3}}) {
        TempDir dir("resume");
        ResultCache cache(dir.str());
        SweepOptions opts;
        opts.cache = &cache;
        opts.cancelAfter = k;

        try {
            runner.run(designs, workloads, opts);
            FAIL() << "cancelAfter=" << k << " did not cancel";
        } catch (const SweepCancelled &cancelled) {
            EXPECT_EQ(cancelled.totalCells, 6u);
            EXPECT_GE(cancelled.partial.size(), k);
            EXPECT_LT(cancelled.partial.size(), 6u);
        }

        // Resume: the killed sweep's cells load, the rest simulate,
        // and the final document matches the uninterrupted run byte
        // for byte.
        SweepTally tally;
        opts.cancelAfter = 0;
        opts.tally = &tally;
        auto resumed = runner.run(designs, workloads, opts);
        EXPECT_GE(tally.cached, k) << "resume lost finished cells";
        EXPECT_EQ(tally.simulated + tally.cached, 6u);
        EXPECT_EQ(sweepBytes(resumed), reference);
    }
}

TEST(ResultCache, ResumeEqualityHoldsAcrossJobCounts)
{
    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    std::vector<const workload::WorkloadSpec *> workloads = {&stream,
                                                             &random};
    std::vector<schemes::Scheme> designs = {schemes::Scheme::Naive,
                                            schemes::Scheme::Pssm,
                                            schemes::Scheme::Shm};

    SweepRunner runner(quickParams());
    const std::string reference =
        sweepBytes(runner.run(designs, workloads, SweepOptions{}));

    TempDir dir("jobs");
    ResultCache cache(dir.str());
    SweepOptions opts;
    opts.cache = &cache;
    opts.jobs = 4;
    opts.cancelAfter = 2;
    EXPECT_THROW(runner.run(designs, workloads, opts), SweepCancelled);

    // Finish with a different job count than the interrupted run.
    opts.jobs = 1;
    opts.cancelAfter = 0;
    EXPECT_EQ(sweepBytes(runner.run(designs, workloads, opts)),
              reference);
}

TEST(ResultCache, CancelWithoutCacheStillReportsPartialResults)
{
    workload::WorkloadSpec stream = workload::makeStreamingMicro();
    workload::WorkloadSpec random = workload::makeRandomMicro();
    std::vector<const workload::WorkloadSpec *> workloads = {&stream,
                                                             &random};
    std::vector<schemes::Scheme> designs = {schemes::Scheme::Shm};

    SweepRunner runner(quickParams());
    SweepOptions opts;
    opts.cancelAfter = 1;
    try {
        runner.run(designs, workloads, opts);
        FAIL() << "expected cancellation";
    } catch (const SweepCancelled &cancelled) {
        EXPECT_EQ(cancelled.totalCells, 2u);
        ASSERT_EQ(cancelled.partial.size(), 1u);
        // The kept cell is a real result, not a default-constructed
        // placeholder.
        EXPECT_GT(cancelled.partial[0].metrics.cycles, 0u);
    }
}

TEST(ResultCacheFuzz, NoKeyCollisionsAcrossAConfigLattice)
{
    // Walk a lattice of config variations — the axes a real sweep
    // moves — and require every cell key to be unique. 64-bit FNV
    // over ~1.5k keys makes an accidental collision astronomically
    // unlikely unless the fingerprint drops a field.
    std::set<std::uint64_t> keys;
    std::size_t produced = 0;

    std::vector<workload::WorkloadSpec> specs;
    for (std::uint64_t fp : {1u << 18, 1u << 20, 3u << 19})
        for (double alpha : {0.2, 0.8, 1.0, 1.3})
            specs.push_back(workload::makeZipfSpec(fp, alpha));
    specs.push_back(workload::makeStreamingMicro());
    specs.push_back(workload::makeRandomMicro());

    for (const auto &spec : specs) {
        for (auto scheme :
             {schemes::Scheme::Naive, schemes::Scheme::Shm}) {
            for (auto policy :
                 {mem::PolicyKind::Lru, mem::PolicyKind::Sieve}) {
                for (std::uint64_t cycles : {10000u, 20000u}) {
                    for (auto backend : {crypto::Backend::Scalar,
                                         crypto::Backend::Vaes}) {
                        for (const char *ver : {"a", "b", "ab"}) {
                            gpu::GpuParams gp = quickParams();
                            gp.l2Policy = policy;
                            gp.maxCyclesPerKernel = cycles;
                            RunOptions run;
                            run.mdcPolicy = policy;
                            keys.insert(keyWith(gp, run, spec, scheme,
                                                backend, ver));
                            ++produced;
                        }
                    }
                }
            }
        }
    }
    EXPECT_EQ(keys.size(), produced);
}

TEST(ResultCacheFuzz, StoredCellsSurviveRereadUnderEveryKey)
{
    // Store one real result under many keys and re-load each: the
    // per-file key stamp must route every load to its own bytes.
    TempDir dir("stamps");
    ResultCache cache(dir.str());

    auto spec = workload::makeStreamingMicro();
    Experiment exp(quickParams());
    ExperimentResult r =
        exp.run(schemes::Scheme::Naive, spec, RunOptions{});

    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 64; ++i)
        keys.push_back(0x1000 + i * 0x77);
    for (auto k : keys)
        cache.store(k, r);
    for (auto k : keys) {
        ExperimentResult out;
        ASSERT_TRUE(cache.load(k, &out));
        EXPECT_EQ(resultToJson(out).dump(2), resultToJson(r).dump(2));
    }
}
