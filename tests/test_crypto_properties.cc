/**
 * @file
 * Cross-primitive crypto property sweeps: spatial/temporal pad
 * uniqueness at scale and key-tuple independence across contexts.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "crypto/keygen.hh"
#include "crypto/mac.hh"

using namespace shmgpu::crypto;

namespace
{

std::uint64_t
padFingerprint(const DataBlock &pad)
{
    std::uint64_t f = 0;
    for (int i = 0; i < 8; ++i)
        f |= static_cast<std::uint64_t>(pad[i]) << (8 * i);
    return f;
}

} // namespace

class CryptoSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CryptoSweep, PadsNeverCollideAcrossSeedSpace)
{
    CtrModeEngine engine(generateKeys(GetParam()).encryptionKey);
    std::set<std::uint64_t> fingerprints;
    int pads = 0;

    // Sweep addresses x partitions x counters: every pad distinct.
    for (std::uint64_t addr = 0; addr < 8; ++addr) {
        for (std::uint32_t part = 0; part < 4; ++part) {
            for (std::uint64_t minor = 0; minor < 8; ++minor) {
                Seed s{addr * 128, 1, minor, part};
                fingerprints.insert(
                    padFingerprint(engine.generatePad(s)));
                ++pads;
            }
        }
    }
    EXPECT_EQ(fingerprints.size(), static_cast<std::size_t>(pads));
}

TEST_P(CryptoSweep, SharedVsPerBlockSeedsOnlyCoincideAtZero)
{
    CtrModeEngine engine(generateKeys(GetParam()).encryptionKey);
    // (shared=s, pad 0) must differ from every per-block (major, minor)
    // except exactly (major=s, minor=0) — the aliasing-safety identity.
    Seed shared{0x1000, 3, 0, 0};
    DataBlock ro_pad = engine.generatePad(shared);
    for (std::uint64_t major = 0; major < 6; ++major) {
        for (std::uint64_t minor = 0; minor < 6; ++minor) {
            Seed per_block{0x1000, major, minor, 0};
            bool should_match = (major == 3 && minor == 0);
            EXPECT_EQ(engine.generatePad(per_block) == ro_pad,
                      should_match)
                << "major " << major << " minor " << minor;
        }
    }
}

TEST_P(CryptoSweep, MacChangesWithEveryCounterStep)
{
    MacEngine engine(generateKeys(GetParam() ^ 7).macKey);
    DataBlock data{};
    std::set<Mac> macs;
    for (std::uint64_t minor = 0; minor < 128; ++minor)
        macs.insert(engine.blockMac(data, 0x2000, 1, minor, 0));
    EXPECT_EQ(macs.size(), 128u) << "counter not fully bound into MAC";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoSweep,
                         ::testing::Values(1ull, 99ull, 2026ull));

TEST(KeyTupleSweep, ContextsNeverShareKeys)
{
    std::set<std::uint64_t> mac_keys, tree_keys;
    for (std::uint64_t ctx = 0; ctx < 256; ++ctx) {
        KeyTuple k = generateKeys(ctx);
        mac_keys.insert(k.macKey.k0 ^ k.macKey.k1);
        tree_keys.insert(k.treeKey.k0 ^ k.treeKey.k1);
    }
    EXPECT_EQ(mac_keys.size(), 256u);
    EXPECT_EQ(tree_keys.size(), 256u);
}
