/**
 * @file
 * Table/CSV emitter tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using shmgpu::TextTable;

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer_name", "2"});

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer_name"), std::string::npos);
    // Each data line must put the value after the widest name column.
    auto line_start = out.find("x ");
    ASSERT_NE(line_start, std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, ShortRowsArePadded)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::pct(0.12345), "12.35%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, RowCount)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}
