/**
 * @file
 * GPU-simulator integration tests: end-to-end runs of micro-workloads
 * under every scheme, detector integration, victim cache, profiling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "gpu/presets.hh"
#include "gpu/simulator.hh"
#include "schemes/schemes.hh"

using namespace shmgpu;
using namespace shmgpu::gpu;

namespace
{

GpuParams
quickParams()
{
    GpuParams p;
    p.maxCyclesPerKernel = 40000;
    return p;
}

RunMetrics
runScheme(schemes::Scheme s, const workload::WorkloadSpec &w,
          GpuParams gp = quickParams())
{
    GpuSimulator sim(gp, schemes::makeMeeParams(s), w);
    return sim.run();
}

} // namespace

TEST(GpuSimulator, BaselineMakesForwardProgress)
{
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    RunMetrics m = runScheme(schemes::Scheme::Baseline, w);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.instructions, 100000u);
    EXPECT_GT(m.ipc, 1.0);
    EXPECT_EQ(m.metadataBytes(), 0u) << "baseline moves no metadata";
    EXPECT_GT(m.bytesData, 0u);
}

TEST(GpuSimulator, DeterministicRuns)
{
    auto w = workload::makeMixedMicro();
    RunMetrics a = runScheme(schemes::Scheme::Shm, w);
    RunMetrics b = runScheme(schemes::Scheme::Shm, w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.bytesData, b.bytesData);
    EXPECT_EQ(a.metadataBytes(), b.metadataBytes());
}

TEST(GpuSimulator, SecureSchemesMoveMetadata)
{
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    for (auto s : {schemes::Scheme::Naive, schemes::Scheme::Pssm,
                   schemes::Scheme::Shm}) {
        RunMetrics m = runScheme(s, w);
        EXPECT_GT(m.metadataBytes(), 0u) << schemes::schemeName(s);
    }
}

TEST(GpuSimulator, SchemeOrderingOnStreamingWorkload)
{
    // The paper's headline ordering: Naive < Common_ctr < PSSM < SHM
    // in IPC (all below baseline).
    auto w = workload::makeStreamingMicro(8 << 20, 4096);
    double base = runScheme(schemes::Scheme::Baseline, w).ipc;
    double naive = runScheme(schemes::Scheme::Naive, w).ipc;
    double cctr = runScheme(schemes::Scheme::CommonCtr, w).ipc;
    double pssm = runScheme(schemes::Scheme::Pssm, w).ipc;
    double shm = runScheme(schemes::Scheme::Shm, w).ipc;

    EXPECT_LT(naive, cctr);
    EXPECT_LT(cctr, pssm);
    EXPECT_LT(pssm, shm);
    EXPECT_LE(shm, base * 1.001);
    EXPECT_GT(shm, base * 0.9) << "SHM should be within 10% of baseline";
}

TEST(GpuSimulator, ShmBandwidthOverheadIsSmallOnStreams)
{
    auto w = workload::makeStreamingMicro(8 << 20, 4096);
    RunMetrics m = runScheme(schemes::Scheme::Shm, w);
    EXPECT_LT(m.metadataOverhead(), 0.10);
    RunMetrics naive = runScheme(schemes::Scheme::Naive, w);
    EXPECT_GT(naive.metadataOverhead(), 0.5);
}

TEST(GpuSimulator, SharedCounterServesReadOnlyStreams)
{
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    RunMetrics m = runScheme(schemes::Scheme::Shm, w);
    EXPECT_GT(m.sharedCtrReads, 0.0);
    EXPECT_GT(m.chunkMacAccesses, m.blockMacAccesses);
}

TEST(GpuSimulator, RandomWorkloadDevolvesToBlockMacs)
{
    auto w = workload::makeRandomMicro(4 << 20, 2048);
    RunMetrics m = runScheme(schemes::Scheme::Shm, w);
    EXPECT_GT(m.blockMacAccesses, 0.0);
}

TEST(GpuSimulator, MultiKernelHostCopiesRearmReadOnly)
{
    auto w = workload::makeMultiKernelMicro();
    RunMetrics m = runScheme(schemes::Scheme::Shm, w);
    // Kernel 1 reads 'in' (read-only), writes 'mid' (transitions);
    // kernel 2 reads 'mid'; kernel 3 re-reads refreshed 'in'.
    EXPECT_GT(m.sharedCtrReads, 0.0);
    EXPECT_GT(m.roTransitions, 0.0);
}

TEST(GpuSimulator, ProfileCollectionSeesTraffic)
{
    auto w = workload::makeMixedMicro();
    detect::AccessProfile profile(12);
    GpuSimulator sim(quickParams(),
                     schemes::makeMeeParams(schemes::Scheme::Baseline),
                     w);
    sim.collectProfile(&profile);
    sim.run();

    int chunks = 0;
    for (PartitionId p = 0; p < 12; ++p)
        profile.forEachChunk(p, [&](std::uint64_t, bool) { ++chunks; });
    EXPECT_GT(chunks, 0);
}

TEST(GpuSimulator, UpperBoundPrimingWorks)
{
    auto w = workload::makeRandomMicro(4 << 20, 2048);
    detect::AccessProfile profile(12);
    {
        GpuSimulator pass1(
            quickParams(),
            schemes::makeMeeParams(schemes::Scheme::Baseline), w);
        pass1.collectProfile(&profile);
        pass1.run();
    }
    GpuSimulator sim(quickParams(),
                     schemes::makeMeeParams(
                         schemes::Scheme::ShmUpperBound),
                     w);
    sim.primeFromProfile(profile);
    sim.attributeAgainst(&profile);
    RunMetrics m = sim.run();
    // Primed predictors on a random workload: block MACs dominate.
    EXPECT_GT(m.blockMacAccesses, m.chunkMacAccesses);
    // And the accuracy tallies are populated.
    double total = m.strCorrect + m.strMpInit + m.strMpAliasing +
                   m.strMpRuntimeRo + m.strMpRuntimeNonRo;
    EXPECT_GT(total, 0.0);
    EXPECT_GT(m.strCorrect / total, 0.9);
}

TEST(GpuSimulator, VictimCacheEngagesOnThrashingL2)
{
    // The streaming micro has ~100% L2 read miss rate, which arms the
    // victim-cache monitor.
    auto w = workload::makeStreamingMicro(8 << 20, 4096);
    RunMetrics m = runScheme(schemes::Scheme::ShmVL2, w);
    EXPECT_GT(m.victimInserts + m.victimHits, 0.0);
}

TEST(GpuSimulator, BandwidthUtilizationIsSane)
{
    auto w = workload::makeStreamingMicro(8 << 20, 4096);
    RunMetrics m = runScheme(schemes::Scheme::Baseline, w);
    EXPECT_GT(m.bandwidthUtilization, 0.5) << "stream should saturate";
    EXPECT_LE(m.bandwidthUtilization, 1.05);
}

TEST(GpuSimulator, EnergyActivityPopulated)
{
    auto w = workload::makeMixedMicro();
    RunMetrics m = runScheme(schemes::Scheme::Shm, w);
    EXPECT_EQ(m.energy.cycles, m.cycles);
    EXPECT_EQ(m.energy.instructions, m.instructions);
    EXPECT_GT(m.energy.dramBytes, 0u);
    EXPECT_GT(m.energy.mdcAccesses, 0u);
}

TEST(GpuSimulator, OversizedWorkloadIsFatal)
{
    workload::WorkloadSpec w = workload::makeStreamingMicro(1 << 20, 16);
    w.buffers[0].bytes = 1ull << 40;
    GpuParams gp = quickParams();
    EXPECT_DEATH(
        { GpuSimulator sim(gp, schemes::makeMeeParams(
                                   schemes::Scheme::Shm), w); },
        "exceeds the protected space");
}

TEST(GpuSimulator, StatsTreeDumps)
{
    auto w = workload::makeMixedMicro();
    GpuSimulator sim(quickParams(),
                     schemes::makeMeeParams(schemes::Scheme::Shm), w);
    sim.run();
    std::ostringstream os;
    sim.statsRoot().dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("sim.cycles"), std::string::npos);
    EXPECT_NE(out.find("p0.mee.reads"), std::string::npos);
    EXPECT_NE(out.find("dram_p0.bytes"), std::string::npos);
}

TEST(Interconnect, LatencyAndSerialization)
{
    InterconnectParams p;
    p.latency = 20;
    p.bytesPerCycle = 32;
    Interconnect icnt(p, 2);

    // One 32 B reply: 1 serialization cycle + 20 latency.
    EXPECT_EQ(icnt.reply(0, 32, 100), 100u + 1 + 20);
    // Directions and partitions are independent links.
    EXPECT_EQ(icnt.reply(1, 32, 100), 100u + 1 + 20);
    EXPECT_EQ(icnt.request(0, 16, 100), 100u + 1 + 20);
    // Back-to-back replies on one link serialize.
    Cycle first = icnt.reply(0, 128, 200);
    Cycle second = icnt.reply(0, 128, 200);
    EXPECT_EQ(first, 200u + 4 + 20);
    EXPECT_EQ(second, first + 4);
}

TEST(Interconnect, ReplyContentionThrottlesHotPartition)
{
    InterconnectParams p;
    p.latency = 20;
    p.bytesPerCycle = 4; // artificially narrow link
    Interconnect icnt(p, 2);

    Cycle last = 0;
    for (int i = 0; i < 16; ++i)
        last = icnt.reply(0, 32, 0);
    // 16 x 8 serialization cycles queue up on the narrow link.
    EXPECT_GE(last, 16u * 8);
    // The other partition's link is idle.
    EXPECT_EQ(icnt.reply(1, 32, 0), 0u + 8 + 20);
}

TEST(GpuPresets, NamedConfigsAreConsistent)
{
    GpuParams turing = presetByName("turing");
    EXPECT_EQ(turing.numSms, 30u);
    EXPECT_EQ(turing.numPartitions, 12u);

    GpuParams big = presetByName("big");
    EXPECT_GT(big.numSms, turing.numSms);
    EXPECT_GT(big.l2BankBytes, turing.l2BankBytes);

    GpuParams tiny = presetByName("test");
    EXPECT_LT(tiny.numSms, turing.numSms);
    EXPECT_DEATH(presetByName("hopper"), "unknown GPU preset");
    EXPECT_EQ(presetNames().size(), 3u);
}

TEST(GpuPresets, TestConfigRunsQuickly)
{
    auto w = workload::makeMixedMicro();
    GpuSimulator sim(presetByName("test"),
                     schemes::makeMeeParams(schemes::Scheme::Shm), w);
    RunMetrics m = sim.run();
    EXPECT_GT(m.instructions, 0u);
    EXPECT_GT(m.metadataBytes(), 0u);
}

TEST(Interconnect, StatsRegistration)
{
    stats::StatGroup root(nullptr, "root");
    Interconnect icnt(InterconnectParams{}, 2);
    icnt.regStats(&root);
    icnt.request(0, 16, 0);
    icnt.reply(1, 32, 0);
    bool found = false;
    EXPECT_EQ(root.lookup("icnt.requests", &found), 1);
    EXPECT_TRUE(found);
    EXPECT_EQ(root.lookup("icnt.reply_bytes", &found), 32);
}

TEST(GpuSimulator, HostCopyPastProtectedSpaceIsClamped)
{
    // A trace can carry a host copy whose base lies beyond the
    // per-partition protected space. The clamped local window must
    // come out empty — before applyHostCopyRange clamped `lo` as well
    // as `hi`, the u64 length underflowed to ~2^64 bytes.
    GpuParams gp = testConfig();
    workload::Trace tr;
    tr.numSms = gp.numSms;
    workload::TraceKernel k;
    k.copies.push_back({/*base=*/1ull << 30, /*bytes=*/4096,
                        /*declaredReadOnly=*/true});
    for (SmId sm = 0; sm < gp.numSms; ++sm) {
        workload::TraceRecord r;
        r.sm = sm;
        r.op.addr = 64ull * sm;
        r.op.computeInstrs = 1;
        k.records.push_back(r);
    }
    tr.kernels.push_back(k);

    GpuSimulator sim(gp, schemes::makeMeeParams(schemes::Scheme::Shm),
                     tr);
    RunMetrics m = sim.run();
    EXPECT_GT(m.cycles, 0u);
    EXPECT_EQ(m.instructions, 2ull * gp.numSms); // compute + read each
}
