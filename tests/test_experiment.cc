/**
 * @file
 * Experiment-facade tests.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace shmgpu;
using namespace shmgpu::core;

namespace
{

gpu::GpuParams
quickParams()
{
    gpu::GpuParams p;
    p.maxCyclesPerKernel = 30000;
    return p;
}

} // namespace

TEST(Experiment, NormalizedIpcIsInUnitRange)
{
    Experiment exp(quickParams());
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    auto r = exp.run(schemes::Scheme::Shm, w);
    EXPECT_GT(r.normalizedIpc, 0.5);
    EXPECT_LE(r.normalizedIpc, 1.001);
    EXPECT_NEAR(r.overhead(), 1.0 - r.normalizedIpc, 1e-12);
    EXPECT_EQ(r.workload, "micro-stream");
    EXPECT_EQ(r.scheme, "SHM");
}

TEST(Experiment, BaselineIsCachedAcrossRuns)
{
    Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    const auto &b1 = exp.baselineFor(w);
    const auto &b2 = exp.baselineFor(w);
    EXPECT_EQ(&b1, &b2);
}

TEST(Experiment, EnergyNormalizationAboveOneForSecureSchemes)
{
    Experiment exp(quickParams());
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    auto naive = exp.run(schemes::Scheme::Naive, w);
    EXPECT_GT(naive.normalizedEnergyPerInstr, 1.05);
    auto shm = exp.run(schemes::Scheme::Shm, w);
    EXPECT_LT(shm.normalizedEnergyPerInstr,
              naive.normalizedEnergyPerInstr);
}

TEST(Experiment, AccuracyCollectionFillsPredictionStats)
{
    Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    RunOptions opts;
    opts.collectAccuracy = true;
    auto r = exp.run(schemes::Scheme::Shm, w, opts);
    double ro_total = r.metrics.roCorrect + r.metrics.roMpInit +
                      r.metrics.roMpAliasing;
    EXPECT_GT(ro_total, 0.0);
}

TEST(Experiment, UpperBoundRunsProfilePassAutomatically)
{
    Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    auto r = exp.run(schemes::Scheme::ShmUpperBound, w);
    EXPECT_GT(r.normalizedIpc, 0.0);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}
