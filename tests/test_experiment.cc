/**
 * @file
 * Experiment-facade tests.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace shmgpu;
using namespace shmgpu::core;

namespace
{

gpu::GpuParams
quickParams()
{
    gpu::GpuParams p;
    p.maxCyclesPerKernel = 30000;
    return p;
}

} // namespace

TEST(Experiment, NormalizedIpcIsInUnitRange)
{
    Experiment exp(quickParams());
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    auto r = exp.run(schemes::Scheme::Shm, w);
    EXPECT_GT(r.normalizedIpc, 0.5);
    EXPECT_LE(r.normalizedIpc, 1.001);
    EXPECT_NEAR(r.overhead(), 1.0 - r.normalizedIpc, 1e-12);
    EXPECT_EQ(r.workload, "micro-stream");
    EXPECT_EQ(r.scheme, "SHM");
}

TEST(Experiment, BaselineIsCachedAcrossRuns)
{
    Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    const auto &b1 = exp.baselineFor(w);
    const auto &b2 = exp.baselineFor(w);
    EXPECT_EQ(&b1, &b2);
}

TEST(Experiment, BaselineCacheDoesNotAliasSpecsSharingAName)
{
    // Two distinct specs under one name: the regenerated-parameter-
    // sweep scenario that used to alias in the name-keyed cache.
    Experiment exp(quickParams());
    auto small = workload::makeStreamingMicro(1 << 20, 1024);
    auto large = workload::makeStreamingMicro(8 << 20, 4096);
    ASSERT_EQ(small.name, large.name);
    ASSERT_NE(workload::contentHash(small),
              workload::contentHash(large));

    const auto &b_small = exp.baselineFor(small);
    const auto &b_large = exp.baselineFor(large);
    EXPECT_NE(&b_small, &b_large);
    EXPECT_NE(b_small.instructions, b_large.instructions);

    // And the cached entries stay stable after both exist.
    EXPECT_EQ(&exp.baselineFor(small), &b_small);
    EXPECT_EQ(&exp.baselineFor(large), &b_large);
    EXPECT_EQ(exp.baselineCache()->size(), 2u);
}

TEST(Experiment, ContentEqualSpecsShareABaselineWhateverTheObject)
{
    Experiment exp(quickParams());
    auto a = workload::makeStreamingMicro(1 << 20, 1024);
    auto b = workload::makeStreamingMicro(1 << 20, 1024);
    EXPECT_EQ(workload::contentHash(a), workload::contentHash(b));
    EXPECT_EQ(&exp.baselineFor(a), &exp.baselineFor(b));
    EXPECT_EQ(exp.baselineCache()->size(), 1u);
}

TEST(Experiment, SharedBaselineCacheSpansExperiments)
{
    auto cache = std::make_shared<BaselineCache>(quickParams());
    Experiment exp1(cache);
    Experiment exp2(cache);
    auto w = workload::makeRandomMicro();
    EXPECT_EQ(&exp1.baselineFor(w), &exp2.baselineFor(w));
    EXPECT_EQ(cache->size(), 1u);
}

TEST(WorkloadContentHash, SensitiveToEverySimulationField)
{
    auto base = workload::makeMixedMicro();
    const auto h0 = workload::contentHash(base);

    auto w = base;
    w.seed += 1;
    EXPECT_NE(workload::contentHash(w), h0);

    w = base;
    w.buffers[0].bytes *= 2;
    EXPECT_NE(workload::contentHash(w), h0);

    w = base;
    w.kernels[0].streams[0].prob *= 0.5;
    EXPECT_NE(workload::contentHash(w), h0);

    w = base;
    w.kernels[0].computePerMem += 1;
    EXPECT_NE(workload::contentHash(w), h0);

    // Documentation-only fields must NOT change the hash: they never
    // reach the simulator, so they must not split the cache.
    w = base;
    w.bwUtilLo = 0.123;
    w.specialSpaces = "different";
    EXPECT_EQ(workload::contentHash(w), h0);
}

TEST(Experiment, EnergyNormalizationAboveOneForSecureSchemes)
{
    Experiment exp(quickParams());
    auto w = workload::makeStreamingMicro(4 << 20, 2048);
    auto naive = exp.run(schemes::Scheme::Naive, w);
    EXPECT_GT(naive.normalizedEnergyPerInstr, 1.05);
    auto shm = exp.run(schemes::Scheme::Shm, w);
    EXPECT_LT(shm.normalizedEnergyPerInstr,
              naive.normalizedEnergyPerInstr);
}

TEST(Experiment, AccuracyCollectionFillsPredictionStats)
{
    Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    RunOptions opts;
    opts.collectAccuracy = true;
    auto r = exp.run(schemes::Scheme::Shm, w, opts);
    double ro_total = r.metrics.roCorrect + r.metrics.roMpInit +
                      r.metrics.roMpAliasing;
    EXPECT_GT(ro_total, 0.0);
}

TEST(Experiment, UpperBoundRunsProfilePassAutomatically)
{
    Experiment exp(quickParams());
    auto w = workload::makeMixedMicro();
    auto r = exp.run(schemes::Scheme::ShmUpperBound, w);
    EXPECT_GT(r.normalizedIpc, 0.0);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}
