/**
 * @file
 * Workload-description parser tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/parser.hh"

using namespace shmgpu;
using namespace shmgpu::workload;

namespace
{

WorkloadSpec
parse(const std::string &text)
{
    std::istringstream is(text);
    return parseWorkload(is, "<test>");
}

const char *kSaxpy = R"(
# a simple saxpy-like kernel
workload saxpy
seed 3
band 40 60
buffer x 8M global
buffer y 8M global
buffer coeffs 64K constant

kernel saxpy_kernel iters=4096 compute=6 window=32
  copy x
  copy coeffs declared
  read x stream
  read coeffs hot 0.5 0.9 p=0.25
  write y stream
)";

} // namespace

TEST(Parser, ParsesFullExample)
{
    WorkloadSpec w = parse(kSaxpy);
    EXPECT_EQ(w.name, "saxpy");
    EXPECT_EQ(w.seed, 3u);
    EXPECT_DOUBLE_EQ(w.bwUtilLo, 0.40);
    EXPECT_DOUBLE_EQ(w.bwUtilHi, 0.60);

    ASSERT_EQ(w.buffers.size(), 3u);
    EXPECT_EQ(w.buffers[0].bytes, 8u << 20);
    EXPECT_EQ(w.buffers[2].bytes, 64u << 10);
    EXPECT_EQ(w.buffers[2].space, MemSpace::Constant);

    ASSERT_EQ(w.kernels.size(), 1u);
    const KernelSpec &k = w.kernels[0];
    EXPECT_EQ(k.iterationsPerSm, 4096u);
    EXPECT_EQ(k.computePerMem, 6u);
    EXPECT_EQ(k.maxOutstanding, 32u);

    ASSERT_EQ(k.preCopies.size(), 2u);
    EXPECT_FALSE(k.preCopies[0].declaredReadOnly);
    EXPECT_TRUE(k.preCopies[1].declaredReadOnly);

    ASSERT_EQ(k.streams.size(), 3u);
    EXPECT_EQ(k.streams[0].pattern, Pattern::Streaming);
    EXPECT_FALSE(k.streams[0].write);
    EXPECT_EQ(k.streams[1].pattern, Pattern::RandomHot);
    EXPECT_DOUBLE_EQ(k.streams[1].hotFraction, 0.5);
    EXPECT_DOUBLE_EQ(k.streams[1].prob, 0.25);
    EXPECT_TRUE(k.streams[2].write);
}

TEST(Parser, SizeSuffixes)
{
    EXPECT_EQ(parseSize("4096"), 4096u);
    EXPECT_EQ(parseSize("4K"), 4096u);
    EXPECT_EQ(parseSize("2M"), 2u << 20);
    EXPECT_EQ(parseSize("1G"), 1u << 30);
    EXPECT_EQ(parseSize("3m"), 3u << 20);
}

TEST(Parser, StridedPattern)
{
    WorkloadSpec w = parse(R"(
workload s
buffer m 1M
kernel k iters=16 compute=1
  read m strided 16 p=0.5
)");
    ASSERT_EQ(w.kernels[0].streams.size(), 1u);
    EXPECT_EQ(w.kernels[0].streams[0].pattern, Pattern::Strided);
    EXPECT_EQ(w.kernels[0].streams[0].strideSectors, 16u);
    EXPECT_DOUBLE_EQ(w.kernels[0].streams[0].prob, 0.5);
}

TEST(Parser, ZipfPattern)
{
    WorkloadSpec w = parse(R"(
workload z
buffer table 1M
kernel lookup iters=16 compute=1
  read table zipf 0.9 p=0.5
)");
    ASSERT_EQ(w.kernels[0].streams.size(), 1u);
    EXPECT_EQ(w.kernels[0].streams[0].pattern, Pattern::Zipf);
    EXPECT_DOUBLE_EQ(w.kernels[0].streams[0].zipfAlpha, 0.9);
    EXPECT_DOUBLE_EQ(w.kernels[0].streams[0].prob, 0.5);

    // Alpha is mandatory, and validation bounds it.
    EXPECT_DEATH(parse("workload z\nbuffer b 1M\nkernel k iters=1\n"
                       "  read b zipf\n"),
                 "at least 3 arguments");
    EXPECT_DEATH(parse("workload z\nbuffer b 1M\nkernel k iters=1\n"
                       "  read b zipf 99\n"),
                 "zipf alpha");
}

TEST(Parser, ErrorsCarryFileAndLine)
{
    EXPECT_DEATH(parse("workload w\nbuffer b 1M\nfrobnicate\n"),
                 "<test>:3: unknown directive 'frobnicate'");
    EXPECT_DEATH(parse("workload w\nbuffer b 1M\nkernel k iters=1\n"
                       "  read nosuch stream\n"),
                 "unknown buffer 'nosuch'");
    EXPECT_DEATH(parse("workload w\nbuffer b 1M\nkernel k iters=1\n"
                       "  read b stream p=2.0\n"),
                 "outside");
    EXPECT_DEATH(parse("workload w\nbuffer b 1M\n  read b stream\n"),
                 "before any kernel");
    EXPECT_DEATH(parse("workload w\nbuffer b 1M\nbuffer b 2M\n"),
                 "duplicate buffer");
}

TEST(Parser, ValidatesResult)
{
    // Parses syntactically but fails semantic validation (no kernels).
    EXPECT_DEATH(parse("workload w\nbuffer b 1M\n"), "no kernels");
}
