/**
 * @file
 * SGX-style counter-tree tests: the alternative integrity-tree design
 * of Fig. 2, exercised with the same attack repertoire as the BMT.
 */

#include <gtest/gtest.h>

#include "crypto/keygen.hh"
#include "meta/counter_tree.hh"

using namespace shmgpu;
using namespace shmgpu::meta;

namespace
{

class CounterTreeTest : public ::testing::Test
{
  protected:
    CounterTreeTest()
        : tree(4096, 8, crypto::generateKeys(11).treeKey)
    {
    }

    SgxCounterTree tree;
};

} // namespace

TEST_F(CounterTreeTest, GeometryMatchesArity)
{
    // 4096 leaves, arity 8: 512, 64, 8, 1 stored levels.
    ASSERT_EQ(tree.levels(), 4u);
    EXPECT_EQ(tree.nodesAt(0), 512u);
    EXPECT_EQ(tree.nodesAt(1), 64u);
    EXPECT_EQ(tree.nodesAt(2), 8u);
    EXPECT_EQ(tree.nodesAt(3), 1u);
}

TEST_F(CounterTreeTest, FreshTreeVerifies)
{
    EXPECT_TRUE(tree.verify(0).ok);
    EXPECT_TRUE(tree.verify(4095).ok);
    EXPECT_EQ(tree.leafVersion(7), 0u);
}

TEST_F(CounterTreeTest, UpdateBumpsVersionAndStillVerifies)
{
    tree.update(42);
    EXPECT_EQ(tree.leafVersion(42), 1u);
    EXPECT_EQ(tree.leafVersion(43), 0u);
    EXPECT_TRUE(tree.verify(42).ok);
    EXPECT_TRUE(tree.verify(43).ok) << "sibling paths stay valid";
    EXPECT_TRUE(tree.verify(4000).ok) << "distant paths stay valid";

    for (int i = 0; i < 10; ++i)
        tree.update(42);
    EXPECT_EQ(tree.leafVersion(42), 11u);
    EXPECT_TRUE(tree.verify(42).ok);
}

TEST_F(CounterTreeTest, MacTamperingDetected)
{
    tree.update(100);
    for (unsigned level = 0; level < tree.levels(); ++level) {
        SgxCounterTree fresh(4096, 8, crypto::generateKeys(11).treeKey);
        fresh.update(100);
        std::uint64_t node = 100;
        for (unsigned l = 0; l <= level; ++l)
            node /= 8;
        fresh.corruptNodeMac(level, node, 0xBAD);
        auto v = fresh.verify(100);
        EXPECT_FALSE(v.ok) << "level " << level;
        EXPECT_EQ(v.failedLevel, level);
    }
}

TEST_F(CounterTreeTest, VersionTamperingDetected)
{
    tree.update(100);
    // Forging the leaf version in its parent invalidates the parent's
    // own MAC (the versions are MACed together).
    tree.tamperVersion(0, 100 / 8, 100 % 8, 999);
    auto v = tree.verify(100);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.failedLevel, 0u);
}

TEST_F(CounterTreeTest, NodeReplayDetected)
{
    // Snapshot the leaf's parent node, advance, then replay it: its
    // embedded MAC is bound to a grandparent version that has moved.
    tree.update(100);
    auto snap = tree.snapshotNode(0, 100 / 8);

    tree.update(100);
    ASSERT_TRUE(tree.verify(100).ok);

    tree.restoreNode(snap);
    auto v = tree.verify(100);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.failedLevel, 0u)
        << "the replayed node's MAC no longer matches its parent "
           "version";
}

TEST_F(CounterTreeTest, ConsistentMultiLevelReplayCaughtAtRoot)
{
    // Replay the whole stored path consistently: only the on-chip
    // root versions expose it.
    tree.update(100);
    std::vector<SgxCounterTree::NodeSnapshot> snaps;
    std::uint64_t node = 100 / 8;
    for (unsigned level = 0; level < tree.levels(); ++level) {
        snaps.push_back(tree.snapshotNode(level, node));
        node /= 8;
    }

    tree.update(100);
    ASSERT_TRUE(tree.verify(100).ok);

    for (const auto &snap : snaps)
        tree.restoreNode(snap);
    auto v = tree.verify(100);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.failedLevel, tree.levels() - 1)
        << "the top stored node fails against the on-chip root "
           "version";
}

TEST_F(CounterTreeTest, ManyLeavesIndependent)
{
    for (std::uint64_t leaf = 0; leaf < 4096; leaf += 97)
        tree.update(leaf);
    for (std::uint64_t leaf = 0; leaf < 4096; leaf += 31)
        EXPECT_TRUE(tree.verify(leaf).ok) << "leaf " << leaf;
}

TEST(CounterTreeGeometry, SingleLevel)
{
    SgxCounterTree tiny(8, 8, crypto::generateKeys(3).treeKey);
    EXPECT_EQ(tiny.levels(), 1u);
    tiny.update(3);
    EXPECT_TRUE(tiny.verify(3).ok);
    tiny.corruptNodeMac(0, 0, 1);
    EXPECT_FALSE(tiny.verify(3).ok);
}
