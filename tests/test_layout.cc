/**
 * @file
 * Metadata-layout geometry tests: index math, region disjointness,
 * BMT shape, space accounting.
 */

#include <gtest/gtest.h>

#include "meta/layout.hh"

using namespace shmgpu;
using namespace shmgpu::meta;

namespace
{

LayoutParams
smallParams(std::uint64_t data_bytes = 1 << 20)
{
    LayoutParams p;
    p.dataBytes = data_bytes;
    return p;
}

} // namespace

TEST(Layout, IndexHelpers)
{
    MetadataLayout l(smallParams());
    EXPECT_EQ(l.blockIndex(0), 0u);
    EXPECT_EQ(l.blockIndex(127), 0u);
    EXPECT_EQ(l.blockIndex(128), 1u);
    EXPECT_EQ(l.chunkIndex(4095), 0u);
    EXPECT_EQ(l.chunkIndex(4096), 1u);
    EXPECT_EQ(l.counterBlockIndex(8 * 1024 - 1), 0u);
    EXPECT_EQ(l.counterBlockIndex(8 * 1024), 1u);
    EXPECT_EQ(l.minorSlot(0), 0u);
    EXPECT_EQ(l.minorSlot(128), 1u);
    EXPECT_EQ(l.minorSlot(64 * 128), 0u);
}

TEST(Layout, ElementCounts)
{
    MetadataLayout l(smallParams(1 << 20));
    EXPECT_EQ(l.numBlocks(), (1u << 20) / 128);
    EXPECT_EQ(l.numChunks(), (1u << 20) / 4096);
    EXPECT_EQ(l.numCounterBlocks(), (1u << 20) / (8 * 1024));
}

TEST(Layout, MetadataRegionsAreDisjointAndAboveData)
{
    MetadataLayout l(smallParams());
    LocalAddr data_end = 1 << 20;

    LocalAddr ctr0 = l.counterAddr(0);
    LocalAddr mac0 = l.blockMacAddr(0);
    LocalAddr cmac0 = l.chunkMacAddr(0);
    EXPECT_GE(ctr0, data_end);
    EXPECT_GE(mac0, data_end);
    EXPECT_GE(cmac0, data_end);

    // Last element of each region stays at or below the next base.
    LocalAddr last_data = data_end - 128;
    EXPECT_LE(l.counterAddr(last_data) + 128, mac0);
    EXPECT_LE(l.blockMacAddr(last_data) + 8, cmac0);
    EXPECT_LE(l.chunkMacAddr(last_data) + 8, l.bmtNodeAddr(0, 0));
}

TEST(Layout, NeighbouringBlocksShareCounterBlock)
{
    MetadataLayout l(smallParams());
    EXPECT_EQ(l.counterAddr(0), l.counterAddr(63 * 128));
    EXPECT_NE(l.counterAddr(0), l.counterAddr(64 * 128));
}

TEST(Layout, MacAddressesAreDense)
{
    MetadataLayout l(smallParams());
    EXPECT_EQ(l.blockMacAddr(128) - l.blockMacAddr(0), 8u);
    EXPECT_EQ(l.chunkMacAddr(4096) - l.chunkMacAddr(0), 8u);
}

TEST(Layout, BmtShape)
{
    // 1 MiB data -> 128 counter blocks -> levels of 8, 1.
    MetadataLayout l(smallParams());
    ASSERT_EQ(l.bmtLevels(), 2u);
    EXPECT_EQ(l.bmtNodesAt(0), 8u);
    EXPECT_EQ(l.bmtNodesAt(1), 1u);
}

TEST(Layout, BmtPathWalksToSingleRoot)
{
    MetadataLayout l(smallParams(64 << 20)); // deeper tree
    std::uint64_t leaves = l.numCounterBlocks();
    auto path_first = l.bmtPath(0);
    auto path_last = l.bmtPath(leaves - 1);
    ASSERT_EQ(path_first.size(), l.bmtLevels());
    // Both paths converge on the same top node.
    EXPECT_EQ(path_first.back(), path_last.back());
    // But differ at the lowest level.
    EXPECT_NE(path_first.front(), path_last.front());
}

TEST(Layout, MetadataOverheadIsReasonable)
{
    // Counters 1/64, MACs 1/16, chunk MACs 1/512, BMT ~1/1000: total
    // well under 10%.
    MetadataLayout l(smallParams(64 << 20));
    double overhead = static_cast<double>(l.metadataBytes()) /
                      static_cast<double>(64 << 20);
    EXPECT_GT(overhead, 0.07);
    EXPECT_LT(overhead, 0.10);
}

TEST(Layout, OutOfRangePanics)
{
    MetadataLayout l(smallParams());
    EXPECT_DEATH(l.blockIndex(1 << 20), "outside");
    EXPECT_DEATH(l.bmtNodeAddr(99, 0), "out of range");
}

// Geometry sweep: address math must stay consistent for any size.
class LayoutSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LayoutSweep, EveryBlockMapsIntoItsRegions)
{
    MetadataLayout l(smallParams(GetParam()));
    for (std::uint64_t b = 0; b < l.numBlocks(); b += 37) {
        LocalAddr addr = b * 128;
        EXPECT_EQ(l.blockIndex(addr), b);
        LocalAddr mac = l.blockMacAddr(addr);
        EXPECT_EQ((mac - l.blockMacAddr(0)) / 8, b);
        std::uint64_t cb = l.counterBlockIndex(addr);
        EXPECT_EQ(cb, b / 64);
        auto path = l.bmtPath(cb);
        EXPECT_EQ(path.size(), l.bmtLevels());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayoutSweep,
                         ::testing::Values(1u << 17, 1u << 20, 3u << 20,
                                           16u << 20, 320u << 20));

// Geometry variants: regions stay disjoint for any (chunk, MAC, arity)
// combination the knobs allow.
class LayoutVariants
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(LayoutVariants, RegionsDisjointUnderAnyGeometry)
{
    auto [chunk, mac, arity] = GetParam();
    LayoutParams p;
    p.dataBytes = 8 << 20;
    p.chunkBytes = chunk;
    p.macBytes = mac;
    p.bmtArity = arity;
    MetadataLayout l(p);

    LocalAddr last = p.dataBytes - 128;
    // Ordered, non-overlapping regions.
    EXPECT_LE(l.counterAddr(last) + 128, l.blockMacAddr(0));
    EXPECT_LE(l.blockMacAddr(last) + mac, l.chunkMacAddr(0));
    EXPECT_LE(l.chunkMacAddr(last) + mac, l.bmtNodeAddr(0, 0));
    // The BMT shrinks by the arity per level and ends at one node.
    for (unsigned level = 1; level < l.bmtLevels(); ++level)
        EXPECT_LE(l.bmtNodesAt(level),
                  (l.bmtNodesAt(level - 1) + arity - 1) / arity);
    EXPECT_EQ(l.bmtNodesAt(l.bmtLevels() - 1), 1u);
    // Every address inverts consistently.
    MetadataLayout::BmtNodeId id = l.bmtNodeOf(l.bmtNodeAddr(0, 3));
    EXPECT_TRUE(id.valid);
    EXPECT_EQ(id.level, 0u);
    EXPECT_EQ(id.index, 3u);
    EXPECT_FALSE(l.bmtNodeOf(0).valid) << "data address is not a node";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutVariants,
    ::testing::Values(std::make_tuple(4096ull, 8u, 16u),
                      std::make_tuple(4096ull, 4u, 16u),
                      std::make_tuple(2048ull, 8u, 8u),
                      std::make_tuple(8192ull, 8u, 32u),
                      std::make_tuple(1024ull, 4u, 8u)));
