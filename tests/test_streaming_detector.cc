/**
 * @file
 * Streaming detector / MAT tests (Section IV-C).
 */

#include <gtest/gtest.h>

#include "detect/streaming.hh"

using namespace shmgpu;
using namespace shmgpu::detect;

namespace
{

StreamingDetectorParams
params()
{
    StreamingDetectorParams p; // paper defaults
    return p;
}

/** Feed a full sequential sector sweep of one chunk. */
void
sweepChunk(StreamingDetector &d, std::uint64_t chunk, Cycle &now,
           std::vector<DetectionEvent> &events, bool write = false,
           Cycle step = 2)
{
    for (int s = 0; s < 128; ++s) {
        d.access(chunk * 4096 + static_cast<std::uint64_t>(s) * 32,
                 write, now, events);
        now += step;
    }
}

} // namespace

TEST(StreamingDetector, EagerStreamingInitialization)
{
    StreamingDetector d(params());
    EXPECT_TRUE(d.predictStreaming(0));
    EXPECT_TRUE(d.predictStreaming(123 * 4096));
    EXPECT_TRUE(d.entryNeverUpdated(0));
}

TEST(StreamingDetector, FullSweepDetectsStreaming)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    sweepChunk(d, 0, now, events);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].detectedStreaming);
    EXPECT_TRUE(events[0].predictedStreaming);
    EXPECT_FALSE(events[0].sawWrite);
    EXPECT_EQ(events[0].accessMask, 0xFFFFFFFFu);
    EXPECT_FALSE(d.entryNeverUpdated(0));
}

TEST(StreamingDetector, SparseAccessesDetectRandomOnTimeout)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    // Touch only three blocks, then let time pass.
    d.access(0, false, now, events);
    d.access(5 * 128, false, now + 1, events);
    d.access(9 * 128, false, now + 2, events);
    EXPECT_TRUE(events.empty());
    // A later access (anywhere) expires the phase.
    d.access(100 * 4096, false, now + 7000, events);
    ASSERT_GE(events.size(), 1u);
    EXPECT_FALSE(events[0].detectedStreaming);
    EXPECT_EQ(events[0].chunk, 0u);
    EXPECT_FALSE(d.predictStreaming(0)) << "bit vector updated";
}

TEST(StreamingDetector, AccessBudgetCutsOffRandomChunks)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    // 128 accesses hammering two blocks only: budget exhausted with
    // gaps -> random, without waiting for the timeout.
    for (int i = 0; i < 128; ++i) {
        d.access((i % 2) * 128, false, now, events);
        ++now;
    }
    ASSERT_EQ(events.size(), 1u);
    EXPECT_FALSE(events[0].detectedStreaming);
}

TEST(StreamingDetector, WriteFlagPropagates)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    sweepChunk(d, 3, now, events, /*write=*/true);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].sawWrite);
}

TEST(StreamingDetector, CooldownAbsorbsStragglers)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    sweepChunk(d, 0, now, events);
    ASSERT_EQ(events.size(), 1u);
    events.clear();

    // A trailing access right after the phase completed must not
    // start a junk phase.
    d.access(31 * 128, false, now + 10, events);
    d.access(100 * 4096, false, now + 20000, events); // expiry trigger
    for (const auto &e : events)
        EXPECT_NE(e.chunk, 0u) << "straggler spawned a junk phase";
    EXPECT_TRUE(d.predictStreaming(0));
}

TEST(StreamingDetector, TrackerPoolLimitsConcurrentMonitoring)
{
    StreamingDetectorParams p = params();
    p.trackers = 2;
    StreamingDetector d(p);
    std::vector<DetectionEvent> events;
    // Open monitoring on chunks 0 and 1; chunk 2 finds no MAT and
    // goes unmonitored.
    d.access(0, false, 0, events);
    d.access(4096, false, 1, events);
    d.access(2 * 4096, false, 2, events);
    EXPECT_TRUE(events.empty());
    // Complete chunk 2's would-be stream: no event, prediction stays.
    for (int s = 1; s < 128; ++s)
        d.access(2 * 4096 + static_cast<std::uint64_t>(s) * 32, false, 3,
                 events);
    for (const auto &e : events)
        EXPECT_NE(e.chunk, 2u);
    EXPECT_TRUE(d.predictStreaming(2 * 4096));
}

TEST(StreamingDetector, TimedOutTrackerIsReclaimed)
{
    StreamingDetectorParams p = params();
    p.trackers = 1;
    StreamingDetector d(p);
    std::vector<DetectionEvent> events;
    d.access(0, false, 0, events); // occupies the only MAT
    // 7000 cycles later another chunk wants a MAT: the stale phase is
    // finalized (random) and the MAT reassigned.
    d.access(4096, false, 7000, events);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].chunk, 0u);
    EXPECT_FALSE(events[0].detectedStreaming);
}

TEST(StreamingDetector, AliasingProvenance)
{
    StreamingDetectorParams p = params();
    p.entries = 2; // chunk ids alias mod 2
    StreamingDetector d(p);
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    sweepChunk(d, 0, now, events);
    EXPECT_EQ(d.entryLastUpdater(2), 0u)
        << "chunk 2 aliases chunk 0's entry";
    EXPECT_FALSE(d.entryNeverUpdated(2));
}

TEST(StreamingDetector, PrimePrediction)
{
    StreamingDetector d(params());
    d.primePrediction(7, false);
    EXPECT_FALSE(d.predictStreaming(7 * 4096));
    EXPECT_FALSE(d.entryNeverUpdated(7));
    EXPECT_EQ(d.entryLastUpdater(7), 7u);
}

TEST(StreamingDetector, FinalizeAllFlushesOpenPhases)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    d.access(0, false, 0, events);
    d.access(128, false, 1, events);
    EXPECT_TRUE(events.empty());
    d.finalizeAll(2, events);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_FALSE(events[0].detectedStreaming);
}

TEST(StreamingDetector, OracleModeTracksEverything)
{
    StreamingDetectorParams p = params();
    p.trackers = 0; // unlimited
    StreamingDetector d(p);
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    // 20 interleaved chunk sweeps — far beyond 8 hardware MATs.
    for (int s = 0; s < 128; ++s) {
        for (std::uint64_t c = 0; c < 20; ++c) {
            d.access(c * 4096 + static_cast<std::uint64_t>(s) * 32,
                     false, now, events);
        }
        now += 1;
    }
    int streaming = 0;
    for (const auto &e : events)
        streaming += e.detectedStreaming;
    EXPECT_EQ(streaming, 20);
}

TEST(StreamingDetector, HardwareBitsMatchTableIX)
{
    StreamingDetector d(params());
    // Table IX: 2048-entry vector + 8 MATs x 71 bits.
    EXPECT_EQ(d.hardwareBits(), 2048u + 8u * 71u);
}

TEST(StreamingDetector, ConfirmedWhileMonitored)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    EXPECT_FALSE(d.confirmedStreaming(0, 0))
        << "an eager-init prediction alone is not verifiable";
    d.access(0, false, 0, events); // allocates a MAT
    EXPECT_TRUE(d.confirmedStreaming(0, 1));
}

TEST(StreamingDetector, ConfirmedAfterOwnDetection)
{
    StreamingDetector d(params());
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    sweepChunk(d, 0, now, events);
    ASSERT_EQ(events.size(), 1u);
    // Entry self-set streaming: confirmed without an active MAT.
    EXPECT_TRUE(d.confirmedStreaming(0, now + 50000));
    // An aliased chunk sharing the entry is NOT confirmed.
    EXPECT_FALSE(d.confirmedStreaming(2048ull * 4096, now + 50000));
}

TEST(StreamingDetector, RandomChunksDoNotHogTrackers)
{
    StreamingDetectorParams p = params();
    StreamingDetector d(p);
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    // Classify 6 chunks random via sparse timed-out phases.
    for (std::uint64_t c = 0; c < 6; ++c) {
        d.access(c * 4096, false, now, events);
        d.access(c * 4096 + 5 * 128, false, now + 1, events);
        now += 7000; // expire each phase
    }
    d.access(100 * 4096, false, now, events); // flush stragglers
    events.clear();

    // Hammer the random chunks: re-monitoring is paced and capped, so
    // at most randomMonitorLimit MATs may be busy with them...
    for (int i = 0; i < 2000; ++i)
        d.access((i % 6) * 4096ull + (i % 32) * 128, false, ++now,
                 events);
    // ...which leaves trackers free for a fresh streaming front.
    events.clear();
    for (int s = 0; s < 128; ++s)
        d.access(50 * 4096 + static_cast<LocalAddr>(s) * 32, false,
                 ++now, events);
    bool found = false;
    for (const auto &e : events)
        if (e.chunk == 50 && e.detectedStreaming)
            found = true;
    EXPECT_TRUE(found) << "streaming front was starved of MATs";
}

TEST(StreamingDetector, ObservabilityStats)
{
    stats::StatGroup root(nullptr, "root");
    StreamingDetector d(params());
    d.regStats(&root);
    std::vector<DetectionEvent> events;
    Cycle now = 0;
    sweepChunk(d, 0, now, events);
    d.access(31 * 128, false, now + 1, events); // cooldown straggler

    bool found = false;
    EXPECT_EQ(root.lookup("stream_detector.phases_started", &found), 1);
    EXPECT_TRUE(found);
    EXPECT_EQ(root.lookup("stream_detector.coverage_exits", &found), 1);
    // The sweep's own tail sectors (after early coverage-finalize)
    // plus the explicit straggler are all absorbed.
    EXPECT_GE(root.lookup("stream_detector.cooldown_absorbed", &found),
              1);
}
