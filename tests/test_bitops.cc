/**
 * @file
 * Bit-manipulation helper tests.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"

using namespace shmgpu;

TEST(BitOps, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ull << 40), 40u);
}

TEST(BitOps, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(6000), 13u); // Table IX timeout counter
    EXPECT_EQ(ceilLog2(32), 5u);    // Table IX access counter
}

TEST(BitOps, Align)
{
    EXPECT_EQ(alignDown(127, 128), 0u);
    EXPECT_EQ(alignDown(128, 128), 128u);
    EXPECT_EQ(alignUp(1, 128), 128u);
    EXPECT_EQ(alignUp(128, 128), 128u);
    EXPECT_EQ(alignUp(0, 128), 0u);
}

TEST(BitOps, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(BitOps, Bits)
{
    EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFu);
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}
